"""The measurement protocol, registry, and selection logic.

The protocol is exercised with a deterministic fake clock so every assertion
is exact: no sleeps, no tolerance bands, no flakiness.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    Benchmark,
    Protocol,
    all_benchmarks,
    benchmark,
    clear_registry,
    get,
    percentile,
    register,
    run_benchmark,
    run_selected,
    select,
    unregister,
)


class FakeClock:
    """Returns scripted instants; one pair consumed per timed sample."""

    def __init__(self, deltas_ns):
        self.deltas_ns = list(deltas_ns)
        self._now = 0
        self._pending = None

    def __call__(self) -> int:
        if self._pending is None:
            self._pending = self.deltas_ns.pop(0)
            return self._now
        self._now += self._pending
        self._pending = None
        return self._now


@pytest.fixture(autouse=True)
def _isolated_registry():
    saved = {b.name: b for b in all_benchmarks()}
    clear_registry()
    yield
    clear_registry()
    for b in saved.values():
        register(b)


# ---------------------------------------------------------------- protocol

class TestProtocol:
    def test_validation(self):
        with pytest.raises(ValueError):
            Protocol(warmup=-1)
        with pytest.raises(ValueError):
            Protocol(repeats=0)
        with pytest.raises(ValueError):
            Protocol(trim=1.0)
        with pytest.raises(ValueError):
            Protocol(trim=-0.1)

    def test_fake_clock_samples_are_exact(self):
        calls = []
        bench = Benchmark("t", lambda: (lambda: calls.append(1)), number=4)
        clock = FakeClock([4000, 8000, 4000, 4000])
        proto = Protocol(warmup=1, repeats=4, trim=0.25, clock=clock)
        result = run_benchmark(bench, proto)
        # warmup ran number times, then repeats * number timed calls
        assert len(calls) == (1 + 4) * 4
        # per-op means: deltas / number
        assert result.samples_ns == [1000.0, 2000.0, 1000.0, 1000.0]
        # trim=0.25 of 4 samples drops the single slowest (the 2000)
        assert result.trimmed == 1
        assert result.kept_ns == [1000.0, 1000.0, 1000.0]
        assert result.p50_ns == 1000.0
        assert result.mean_ns == 1000.0
        assert result.min_ns == result.max_ns == 1000.0

    def test_zero_trim_keeps_everything(self):
        bench = Benchmark("t", lambda: (lambda: None), number=1)
        clock = FakeClock([100, 300, 200])
        result = run_benchmark(bench, Protocol(warmup=0, repeats=3, trim=0.0, clock=clock))
        assert result.trimmed == 0
        assert sorted(result.samples_ns) == result.kept_ns == [100.0, 200.0, 300.0]

    def test_cleanup_runs_even_when_op_raises(self):
        cleaned = []

        def setup():
            def op():
                raise RuntimeError("boom")

            return op, lambda: cleaned.append(True)

        bench = Benchmark("t", setup)
        with pytest.raises(RuntimeError):
            run_benchmark(bench, Protocol(warmup=0, repeats=1))
        assert cleaned == [True]

    def test_setup_without_cleanup_is_normalized(self):
        bench = Benchmark("t", lambda: (lambda: None))
        op, cleanup = bench.build()
        op()
        cleanup()  # the default no-op


class TestPercentile:
    def test_interpolation(self):
        xs = [10.0, 20.0, 30.0, 40.0]
        assert percentile(xs, 50) == 25.0
        assert percentile(xs, 0) == 10.0
        assert percentile(xs, 100) == 40.0
        assert percentile(xs, 95) == pytest.approx(38.5)

    def test_single_sample(self):
        assert percentile([7.0], 95) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


# ---------------------------------------------------------------- registry

class TestRegistry:
    def test_register_and_get(self):
        b = register(Benchmark("alpha", lambda: (lambda: None)))
        assert get("alpha") is b
        with pytest.raises(KeyError):
            get("missing")

    def test_reregistration_replaces(self):
        register(Benchmark("alpha", lambda: (lambda: None), number=1))
        register(Benchmark("alpha", lambda: (lambda: None), number=7))
        assert get("alpha").number == 7
        assert len(all_benchmarks()) == 1

    def test_unregister(self):
        register(Benchmark("alpha", lambda: (lambda: None)))
        unregister("alpha")
        unregister("alpha")  # idempotent
        assert all_benchmarks() == []

    def test_decorator_registers_with_docstring_description(self):
        @benchmark("beta", group="g", number=3, tags=("fast",))
        def _setup():
            """Short description."""
            return lambda: None

        b = get("beta")
        assert b.group == "g" and b.number == 3 and b.tags == ("fast",)
        assert b.description == "Short description."

    def test_validation(self):
        with pytest.raises(ValueError):
            Benchmark("", lambda: None)
        with pytest.raises(ValueError):
            Benchmark("x", lambda: None, number=0)


class TestSelect:
    def _populate(self):
        register(Benchmark("dispatch_fast", lambda: (lambda: None), group="dispatch"))
        register(Benchmark("queue_drain", lambda: (lambda: None), group="queue",
                           tags=("smoke",)))
        register(Benchmark("heavy_sweep", lambda: (lambda: None), group="sim",
                           slow=True))

    def test_no_pattern_excludes_slow(self):
        self._populate()
        assert [b.name for b in select()] == ["dispatch_fast", "queue_drain"]

    def test_include_slow(self):
        self._populate()
        assert [b.name for b in select(include_slow=True)] == [
            "dispatch_fast", "heavy_sweep", "queue_drain",
        ]

    def test_pattern_matches_name_group_and_tags(self):
        self._populate()
        assert [b.name for b in select("dispatch")] == ["dispatch_fast"]
        assert [b.name for b in select("smoke")] == ["queue_drain"]
        assert [b.name for b in select("QUEUE")] == ["queue_drain"]

    def test_name_match_overrides_slow_exclusion(self):
        self._populate()
        # naming a slow benchmark is an explicit request
        assert [b.name for b in select("heavy_sweep")] == ["heavy_sweep"]
        # but a group match alone does not drag slow benchmarks in
        assert select("sim") == []

    def test_run_selected_reports_progress(self):
        self._populate()
        seen = []
        results = run_selected(
            "dispatch", Protocol(warmup=0, repeats=1), progress=seen.append
        )
        assert seen == ["dispatch_fast"]
        assert [r.name for r in results] == ["dispatch_fast"]
