"""DeterministicScheduler: the park/grant protocol in isolation."""

from __future__ import annotations

import time

import pytest

from repro.explore.scheduler import (
    DeterministicScheduler,
    ExplorationDeadlock,
    ExplorationError,
)


def step(sched, label):
    """Wait for quiescence, assert *label* is enabled, grant it."""
    parked = sched.wait_quiescent()
    assert label in [p.label for p in parked], (label, parked)
    sched.grant(label)


class TestSerialization:
    def test_grant_order_is_execution_order(self):
        sched = DeterministicScheduler()
        log = []

        def actor(tag):
            def fn():
                for i in range(2):
                    sched.checkpoint("step")
                    log.append(f"{tag}{i}")
            return fn

        sched.actor("a", actor("a"))
        sched.actor("b", actor("b"))
        sched.start()
        # spawn parks first, then each checkpoint park; interleave strictly.
        for label in ("a", "b", "a", "b", "a", "b"):
            step(sched, label)
        assert sched.wait_quiescent() == []
        sched.join()
        assert log == ["a0", "b0", "a1", "b1"]

    def test_exactly_one_actor_runs_between_grants(self):
        sched = DeterministicScheduler()
        log = []

        def actor(tag):
            def fn():
                sched.checkpoint("step")
                log.append((tag, "in"))
                time.sleep(0.005)
                log.append((tag, "out"))
            return fn

        for label in ("a", "b", "c"):
            sched.actor(label, actor(label))
        sched.start()
        while True:
            parked = sched.wait_quiescent()
            if not parked:
                break
            sched.grant(parked[0].label)
        sched.join()
        # Serialized execution: every "in" is immediately followed by the
        # same actor's "out" — no two bodies were ever in flight at once.
        assert len(log) == 6
        for i in range(0, len(log), 2):
            assert log[i][0] == log[i + 1][0]
            assert (log[i][1], log[i + 1][1]) == ("in", "out")

    def test_enabled_listing_is_sorted_with_park_info(self):
        sched = DeterministicScheduler()
        sched.actor("zeta", lambda: sched.checkpoint("late", "t1"))
        sched.actor("alpha", lambda: sched.checkpoint("early", "t0"))
        sched.start()
        parked = sched.wait_quiescent()
        assert [p.label for p in parked] == ["alpha", "zeta"]
        assert all(p.point == "spawn" for p in parked)
        step(sched, "alpha")
        step(sched, "zeta")
        parked = sched.wait_quiescent()
        assert [(p.label, p.point, p.target) for p in parked] == [
            ("alpha", "early", "t0"), ("zeta", "late", "t1"),
        ]
        sched.release_all()
        sched.join()


class TestEnabledPredicates:
    def test_disabled_actor_is_not_offered(self):
        sched = DeterministicScheduler()
        gate = []

        sched.actor("waiter", lambda: sched.checkpoint(
            "wait", enabled_when=lambda: bool(gate)))
        sched.actor("opener", lambda: gate.append(1))
        sched.start()
        step(sched, "waiter")  # spawn park: release it into its checkpoint
        parked = sched.wait_quiescent()
        # waiter is parked but disabled; only opener's spawn is offered.
        assert [p.label for p in parked] == ["opener"]
        step(sched, "opener")
        parked = sched.wait_quiescent()
        assert [p.label for p in parked] == ["waiter"]
        step(sched, "waiter")
        sched.join()

    def test_grant_of_disabled_actor_is_an_error(self):
        sched = DeterministicScheduler()
        sched.actor("waiter", lambda: sched.checkpoint(
            "wait", enabled_when=lambda: False))
        sched.actor("other", lambda: sched.checkpoint("step"))
        sched.start()
        step(sched, "waiter")
        step(sched, "other")
        sched.wait_quiescent()
        with pytest.raises(ExplorationError, match="not enabled"):
            sched.grant("waiter")
        sched.release_all()
        sched.join()

    def test_predicate_exception_is_diagnosed(self):
        sched = DeterministicScheduler()
        sched.actor("bad", lambda: sched.checkpoint(
            "wait", enabled_when=lambda: 1 / 0))
        sched.start()
        step(sched, "bad")
        with pytest.raises(ExplorationError, match="enabled predicate"):
            sched.wait_quiescent()
        sched.release_all()
        sched.join()


class TestVirtualTime:
    def test_vsleep_costs_no_wall_time(self):
        sched = DeterministicScheduler()
        sched.actor("sleeper", lambda: sched.vsleep(3600.0))
        sched.start()
        step(sched, "sleeper")  # spawn -> vsleep park
        t0 = time.monotonic()
        parked = sched.wait_quiescent()  # warps the clock to the wakeup
        assert time.monotonic() - t0 < 5.0
        assert [p.label for p in parked] == ["sleeper"]
        assert sched.sim.now >= 3600.0
        sched.grant("sleeper")
        sched.join()

    def test_each_grant_advances_one_tick(self):
        sched = DeterministicScheduler()
        sched.actor("a", lambda: sched.checkpoint("step"))
        sched.start()
        assert sched.sim.now == 0.0
        step(sched, "a")  # spawn
        step(sched, "a")  # checkpoint
        sched.join()
        assert sched.sim.now == 2.0

    def test_sleepers_wake_in_virtual_order(self):
        sched = DeterministicScheduler()
        log = []
        sched.actor("slow", lambda: (sched.vsleep(10.0), log.append("slow"))[-1])
        sched.actor("fast", lambda: (sched.vsleep(2.0), log.append("fast"))[-1])
        sched.start()
        step(sched, "fast")
        step(sched, "slow")
        while True:
            parked = sched.wait_quiescent()
            if not parked:
                break
            sched.grant(parked[0].label)
        sched.join()
        assert log == ["fast", "slow"]


class TestFailureModes:
    def test_deadlock_names_the_parked_actors(self):
        sched = DeterministicScheduler()
        sched.actor("stuck", lambda: sched.checkpoint(
            "never", "t9", enabled_when=lambda: False))
        sched.start()
        step(sched, "stuck")
        with pytest.raises(ExplorationDeadlock, match="stuck@never"):
            sched.wait_quiescent()
        sched.release_all()
        sched.join()

    def test_wedged_actor_hits_the_watchdog(self):
        sched = DeterministicScheduler(step_timeout=0.2)
        gate = []

        def busy():
            while not gate:
                time.sleep(0.01)

        sched.actor("wedged", busy)
        sched.start()
        step(sched, "wedged")
        with pytest.raises(ExplorationError, match="wedged"):
            sched.wait_quiescent()
        gate.append(1)
        sched.release_all()
        sched.join()

    def test_actor_exception_is_captured_not_raised(self):
        sched = DeterministicScheduler()

        def boom():
            raise ValueError("actor body failed")

        sched.actor("boom", boom)
        sched.start()
        step(sched, "boom")
        assert sched.wait_quiescent() == []
        sched.join()
        errors = sched.errors()
        assert set(errors) == {"boom"}
        assert isinstance(errors["boom"], ValueError)

    def test_duplicate_label_and_late_enrolment_rejected(self):
        sched = DeterministicScheduler()
        sched.actor("a", lambda: None)
        with pytest.raises(ExplorationError, match="duplicate"):
            sched.actor("a", lambda: None)
        sched.start()
        with pytest.raises(ExplorationError, match="after start"):
            sched.actor("b", lambda: None)
        step(sched, "a")
        sched.join()

    def test_grant_unknown_actor_rejected(self):
        sched = DeterministicScheduler()
        sched.actor("a", lambda: None)
        sched.start()
        with pytest.raises(ExplorationError, match="unknown actor"):
            sched.grant("ghost")
        sched.release_all()
        sched.join()


class TestTeardown:
    def test_release_all_unblocks_loops(self):
        sched = DeterministicScheduler()
        rounds = []

        def looper():
            while sched.checkpoint("loop"):
                rounds.append(1)

        sched.actor("looper", looper)
        sched.start()
        step(sched, "looper")  # spawn
        step(sched, "looper")  # one loop round
        sched.wait_quiescent()
        sched.release_all()
        sched.join()
        assert rounds  # made progress, then exited via the False checkpoint
