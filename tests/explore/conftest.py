"""Isolation for the explore suite: exploration starts/stops the process
global trace session and installs the decision hook; every test gets a
clean session and leaves no injection hooks armed."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import injection


@pytest.fixture(autouse=True)
def _clean_session():
    obs.disable()
    obs.session().clear()
    injection.uninstall()
    yield
    obs.disable()
    obs.session().clear()
    obs.session().buffer_size = obs.DEFAULT_BUFFER_SIZE
    injection.uninstall()
