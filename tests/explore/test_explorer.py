"""The exploration DFS: coverage, pruning, violation -> schedule -> replay."""

from __future__ import annotations

import json

import pytest

from repro.explore import (
    ScheduleFile,
    ScheduleStep,
    TAMPERS,
    explore,
    load_schedule,
    replay,
    save_schedule,
    schedule_digest,
)


class TestCoverage:
    def test_post_2x1_is_exhaustive(self):
        result = explore("post-2x1", max_schedules=2000)
        assert result.exhausted
        assert result.ok
        assert result.violating is None
        # The 2-region/1-target acceptance model: a real tree, fully drained.
        assert result.schedules > 50
        assert result.max_steps >= 7

    def test_exploration_is_deterministic(self):
        a = explore("post-2x1", max_schedules=2000)
        b = explore("post-2x1", max_schedules=2000)
        assert (a.schedules, a.abandoned, a.pruned_sleep, a.max_steps) == \
            (b.schedules, b.abandoned, b.pruned_sleep, b.max_steps)

    def test_budget_caps_the_walk(self):
        result = explore("post-2x1", max_schedules=5)
        assert not result.exhausted
        assert result.schedules + result.abandoned == 5

    def test_seeded_exploration_is_reproducible(self):
        a = explore("post-2x1", max_schedules=40, seed=7)
        b = explore("post-2x1", max_schedules=40, seed=7)
        assert (a.schedules, a.abandoned, a.total_steps) == \
            (b.schedules, b.abandoned, b.total_steps)

    def test_unknown_workload_and_inject_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            explore("no-such-model")
        with pytest.raises(ValueError, match="unknown inject"):
            explore("post-2x1", inject="no-such-tamper")


class TestPruning:
    def test_sleep_sets_prune_independent_targets(self):
        # Two independent target/pumper pairs: most cross-orderings commute,
        # so the sleep sets must cut real work.
        result = explore("post-2x2", max_schedules=300)
        assert result.ok
        assert result.pruned_sleep > 0

    def test_preemption_bound_shrinks_the_tree(self):
        free = explore("post-2x1", max_schedules=2000)
        bounded = explore("post-2x1", preemption_bound=0, max_schedules=2000)
        assert bounded.exhausted
        assert bounded.ok
        assert bounded.pruned_preempt > 0
        # A 0-preemption walk only switches actors at voluntary yields.
        assert bounded.schedules < free.schedules


class TestViolationPipeline:
    @pytest.mark.parametrize("mode", sorted(TAMPERS))
    def test_tampered_trace_is_caught(self, mode):
        result = explore("post-2x1", inject=mode, max_schedules=50)
        assert not result.ok
        assert result.violating is not None
        assert result.violating.violations

    def test_violating_schedule_replays_identically(self, tmp_path):
        result = explore("post-2x1", inject="lying-exec-outcome")
        rec = result.violating
        assert rec is not None
        path = save_schedule(tmp_path, ScheduleFile(
            workload=result.workload,
            steps=rec.choices,
            inject=result.inject,
            violations=[v.render() for v in rec.violations],
        ))
        outcome = replay(str(path))
        assert outcome.record.diverged is None
        assert outcome.identical
        assert outcome.actual == outcome.expected
        assert outcome.actual  # the violation really was reproduced

    def test_replay_reports_divergence(self, tmp_path):
        # A schedule whose first grant expects a park the actor never takes:
        # at depth 0 every actor is parked at "spawn", not "post".
        path = save_schedule(tmp_path, ScheduleFile(
            workload="post-2x1",
            steps=[ScheduleStep("post-a", "post", "t0")],
            violations=[],
        ))
        outcome = replay(str(path))
        assert outcome.record.diverged is not None
        assert not outcome.identical

    def test_replay_rejects_unknown_workload(self, tmp_path):
        path = save_schedule(tmp_path, ScheduleFile(
            workload="post-2x1", steps=[]
        ))
        doc = json.loads(path.read_text())
        doc["workload"] = "no-such-model"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="unknown workload"):
            replay(str(path))


class TestScheduleFiles:
    def test_round_trip_preserves_everything(self, tmp_path):
        sf = ScheduleFile(
            workload="post-2x1",
            steps=[
                ScheduleStep("post-a", "spawn"),
                ScheduleStep("post-a", "post", "t0"),
            ],
            inject="lost-dequeue",
            violations=["[x] something"],
            meta={"preemption_bound": 2},
        )
        path = save_schedule(tmp_path, sf)
        loaded = load_schedule(path)
        assert loaded.workload == sf.workload
        assert loaded.steps == sf.steps
        assert loaded.inject == sf.inject
        assert loaded.violations == sf.violations
        assert loaded.meta == sf.meta

    def test_digest_is_stable_and_content_sensitive(self):
        steps = [ScheduleStep("a", "post", "t0")]
        d1 = schedule_digest("w", steps)
        d2 = schedule_digest("w", [ScheduleStep("a", "post", "t0")])
        d3 = schedule_digest("w", [ScheduleStep("b", "post", "t0")])
        assert d1 == d2
        assert d1 != d3
        assert len(d1) == 12

    def test_filename_embeds_workload_and_digest(self, tmp_path):
        sf = ScheduleFile(workload="post-2x1", steps=[])
        path = save_schedule(tmp_path, sf)
        assert path.name == f"explore-post-2x1-{sf.digest()}.json"

    def test_foreign_format_rejected(self, tmp_path):
        bogus = tmp_path / "not-a-schedule.json"
        bogus.write_text(json.dumps({"format": "something/else"}))
        with pytest.raises(ValueError, match="not a repro.explore/v1"):
            load_schedule(bogus)
