"""The workload models: every model quiesces cleanly under exploration,
and the sensor machinery would catch a dispatch that touches a corpse."""

from __future__ import annotations

import pytest

from repro.explore import WORKLOADS, SensorRegion, explore
from repro.explore.workloads import CallerRunsCancel


class TestModels:
    def test_registry_names_match_classes(self):
        for name, cls in WORKLOADS.items():
            assert cls.name == name
            assert cls.description

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_model_explores_clean(self, name):
        # Bounded walk per model: enough to cross every seam kind (post,
        # dispatch, cancel, shutdown, vsleep) without exhausting the big
        # trees in a unit test.  The runtime under its current fixes must
        # survive every one of these interleavings.
        result = explore(name, preemption_bound=1, max_schedules=400)
        assert result.ok, [
            v.render() for v in result.violating.violations
        ] if result.violating else []
        assert result.schedules > 0

    def test_caller_runs_cancel_model_is_exhaustible(self):
        # The satellite-bug model: after the targets.py fix the *entire*
        # schedule tree is clean — including the orders where the cancel
        # lands inside the caller_runs handoff window.
        result = explore("caller-runs-cancel", max_schedules=3000)
        assert result.exhausted
        assert result.ok


class TestSensorRegion:
    def test_counts_runs_after_terminal(self):
        region = SensorRegion(lambda: "x", name="r1")
        region.cancel()
        assert region.late_runs == 0
        region.run()  # the PENDING guard makes this a no-op body-wise...
        assert region.late_runs == 1  # ...but the sensor still saw the call

    def test_workload_verify_reports_late_runs(self):
        wl = CallerRunsCancel()

        class _Ctx:
            def actor(self, label, fn):
                pass

            def checkpoint(self, *a, **k):
                return True

            def vsleep(self, d):
                pass

        wl.setup(_Ctx())
        wl.r1.cancel()
        wl.r1.run()
        violations = wl.verify([])
        assert any(v.invariant == "exec-after-cancel" for v in violations)
        wl.quiesce()
