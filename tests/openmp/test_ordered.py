"""Tests for the ordered construct and flush."""

import threading

import pytest

import repro.openmp as omp
from repro.openmp import WorksharingError


class TestOrdered:
    @pytest.mark.parametrize("schedule", ["static", "dynamic", "guided"])
    def test_ordered_output_in_iteration_order(self, schedule):
        out = []
        lock = threading.Lock()

        def body():
            def item(i):
                # unordered part may interleave freely
                with lock:
                    pass
                omp.ordered(lambda: out.append(i))

            omp.for_loop(25, item, schedule=schedule, chunk=2, ordered=True)

        omp.parallel(body, num_threads=3)
        assert out == list(range(25))

    def test_skipped_ordered_regions_do_not_stall(self):
        out = []

        def body():
            def item(i):
                if i % 3 == 0:
                    omp.ordered(lambda: out.append(i))

            omp.for_loop(12, item, schedule="dynamic", chunk=1, ordered=True)

        omp.parallel(body, num_threads=3)
        assert out == [0, 3, 6, 9]

    def test_ordered_returns_body_value(self):
        results = []

        def body():
            def item(i):
                results.append(omp.ordered(lambda: i * 10))

            omp.for_loop(4, item, ordered=True)

        omp.parallel(body, num_threads=2)
        assert sorted(results) == [0, 10, 20, 30]

    def test_ordered_outside_ordered_loop_rejected(self):
        with pytest.raises(WorksharingError):
            omp.ordered(lambda: None)

    def test_ordered_in_plain_loop_rejected(self):
        def body():
            omp.for_loop(3, lambda i: omp.ordered(lambda: None))

        with pytest.raises(omp.ParallelRegionError):
            omp.parallel(body, num_threads=1)

    def test_ordered_with_reduction(self):
        seq = []

        def body():
            def item(i):
                omp.ordered(lambda: seq.append(i))
                return i

            return omp.for_loop(10, item, ordered=True, reduction="+")

        res = omp.parallel(body, num_threads=3)
        assert res == [45, 45, 45]
        assert seq == list(range(10))

    def test_consecutive_ordered_loops(self):
        a, b = [], []

        def body():
            omp.for_loop(5, lambda i: omp.ordered(lambda: a.append(i)), ordered=True)
            omp.for_loop(5, lambda i: omp.ordered(lambda: b.append(i)), ordered=True)

        omp.parallel(body, num_threads=2)
        assert a == list(range(5))
        assert b == list(range(5))


class TestFlush:
    def test_flush_is_callable_noop(self):
        omp.flush()
        omp.flush("x", "y")

    def test_flush_inside_region(self):
        omp.parallel(lambda: omp.flush(), num_threads=2)


class TestCompiled:
    def test_ordered_clause_and_directive(self):
        from repro.compiler import exec_omp
        from repro.core import PjRuntime

        rt = PjRuntime()
        try:
            ns = exec_omp(
                "out = []\n"
                "def f(n):\n"
                "    #omp parallel for num_threads(3) schedule(dynamic, 1) ordered\n"
                "    for i in range(n):\n"
                "        x = i * i\n"
                "        #omp ordered\n"
                "        out.append(i)\n"
                "f(15)\n",
                runtime=rt,
            )
            assert ns["out"] == list(range(15))
        finally:
            rt.shutdown(wait=False)

    def test_flush_directive_compiles(self):
        from repro.compiler import compile_source

        out = compile_source(
            "def f():\n"
            "    x = 1\n"
            "    #omp flush(x)\n"
        )
        assert "__repro_omp__.flush()" in out

    def test_ordered_parse(self):
        from repro.compiler import parse_directive
        from repro.compiler.directive_parser import ForDir, OrderedDir

        d = parse_directive("for ordered schedule(dynamic)")
        assert isinstance(d, ForDir) and d.ordered
        assert isinstance(parse_directive("ordered"), OrderedDir)
