"""Tests for synchronization constructs, reductions, and the omp_* API."""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.openmp as omp
from repro.openmp import Atomic, WorksharingError


class TestCritical:
    def test_mutual_exclusion(self):
        counter = {"v": 0}

        def body():
            for _ in range(200):
                with omp.critical("count"):
                    v = counter["v"]
                    # A deliberate read-modify-write window.
                    counter["v"] = v + 1

        omp.parallel(body, num_threads=4)
        assert counter["v"] == 800

    def test_named_criticals_independent(self):
        """Different names use different locks: holding one must not block
        the other."""
        order = []
        a_held = threading.Event()

        def body(tid):
            if tid == 0:
                with omp.critical("a"):
                    a_held.set()
                    time.sleep(0.1)
                    order.append("a-done")
            else:
                a_held.wait(timeout=5)
                with omp.critical("b"):
                    order.append("b-done")

        omp.parallel(body, num_threads=2)
        assert order == ["b-done", "a-done"]

    def test_reentrant(self):
        with omp.critical("outer"):
            with omp.critical("outer"):
                pass  # OpenMP would deadlock; we document re-entrancy

    def test_usable_outside_region(self):
        with omp.critical():
            pass


class TestBarrier:
    def test_barrier_synchronises(self):
        phase = []
        lock = threading.Lock()

        def body(tid):
            with lock:
                phase.append(("pre", tid))
            omp.barrier()
            with lock:
                phase.append(("post", tid))

        omp.parallel(body, num_threads=4)
        pres = [i for i, (p, _) in enumerate(phase) if p == "pre"]
        posts = [i for i, (p, _) in enumerate(phase) if p == "post"]
        assert max(pres) < min(posts)

    def test_barrier_outside_region(self):
        with pytest.raises(WorksharingError):
            omp.barrier()


class TestAtomic:
    def test_concurrent_adds(self):
        cell = Atomic(0)
        omp.parallel(lambda: [cell.add(1) for _ in range(500)], num_threads=4)
        assert cell.value == 2000

    def test_update_returns_new_value(self):
        cell = Atomic(10)
        assert cell.update(lambda v: v * 3) == 30

    def test_compare_and_swap(self):
        cell = Atomic("a")
        assert cell.compare_and_swap("a", "b")
        assert not cell.compare_and_swap("a", "c")
        assert cell.value == "b"

    def test_setter(self):
        cell = Atomic(1)
        cell.value = 99
        assert cell.value == 99


class TestReductionTable:
    @pytest.mark.parametrize(
        "op,values,expected",
        [
            ("+", [1, 2, 3], 6),
            ("*", [2, 3, 4], 24),
            ("max", [3, 9, 1], 9),
            ("min", [3, 9, 1], 1),
            ("&&", [True, True, False], False),
            ("||", [False, False, True], True),
            ("&", [0b110, 0b011], 0b010),
            ("|", [0b100, 0b001], 0b101),
            ("^", [0b101, 0b011], 0b110),
        ],
    )
    def test_operator_folds(self, op, values, expected):
        fn = omp.REDUCTIONS[op]
        acc = omp.identity_for(op)
        for v in values:
            acc = fn(acc, v)
        assert acc == expected

    def test_register_custom_reduction(self):
        import uuid

        name = f"concat-{uuid.uuid4().hex[:6]}"
        omp.register_reduction(name, lambda a, b: a + b, "")

        def body():
            return omp.for_loop(["x", "y", "z"], lambda s: s, reduction=name)

        assert omp.parallel(body, num_threads=1) == ["xyz"]

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError):
            omp.register_reduction("+", lambda a, b: a, 0)

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=60),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_parallel_sum_matches_sequential(self, values, nthreads):
        def body():
            return omp.for_loop(values, lambda x: x, reduction="+")

        res = omp.parallel(body, num_threads=nthreads)
        assert res == [sum(values)] * nthreads


class TestRuntimeApi:
    def test_outside_any_region(self):
        assert omp.omp_get_thread_num() == 0
        assert omp.omp_get_num_threads() == 1
        assert not omp.omp_in_parallel()
        assert omp.omp_get_level() == 0
        assert omp.omp_get_team_size(1) == 1

    def test_inside_region(self):
        res = omp.parallel(
            lambda: (
                omp.omp_get_num_threads(),
                omp.omp_in_parallel(),
                omp.omp_get_team_size(1),
            ),
            num_threads=3,
        )
        assert res == [(3, True, 3)] * 3

    def test_thread_nums_unique(self):
        res = omp.parallel(lambda: omp.omp_get_thread_num(), num_threads=5)
        assert sorted(res) == [0, 1, 2, 3, 4]

    def test_wtime_monotonic(self):
        a = omp.omp_get_wtime()
        b = omp.omp_get_wtime()
        assert b >= a

    def test_set_get_max_threads(self):
        old = omp.omp_get_max_threads()
        try:
            omp.omp_set_num_threads(7)
            assert omp.omp_get_max_threads() == 7
        finally:
            omp.omp_set_num_threads(old)

    def test_set_num_threads_validation(self):
        with pytest.raises(ValueError):
            omp.omp_set_num_threads(0)

    def test_max_active_levels_validation(self):
        with pytest.raises(ValueError):
            omp.omp_set_max_active_levels(0)

    def test_single_member_team_not_in_parallel(self):
        # omp_in_parallel is false for a serialised (size-1) region.
        res = omp.parallel(lambda: omp.omp_in_parallel(), num_threads=1)
        assert res == [False]
