"""Tests for worksharing constructs and schedules."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.openmp as omp
from repro.openmp import WorksharingError, static_chunks


class TestStaticChunks:
    def test_default_blocks(self):
        chunks = static_chunks(10, 3)
        assert [list(r) for rs in chunks for r in rs] == [
            [0, 1, 2, 3], [4, 5, 6], [7, 8, 9]
        ]

    def test_chunked_round_robin(self):
        chunks = static_chunks(10, 2, chunk=3)
        assert [list(r) for r in chunks[0]] == [[0, 1, 2], [6, 7, 8]]
        assert [list(r) for r in chunks[1]] == [[3, 4, 5], [9]]

    def test_more_threads_than_iterations(self):
        chunks = static_chunks(2, 5)
        sizes = [sum(len(r) for r in rs) for rs in chunks]
        assert sizes == [1, 1, 0, 0, 0]

    def test_zero_iterations(self):
        assert all(not rs for rs in static_chunks(0, 4))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            static_chunks(-1, 2)
        with pytest.raises(ValueError):
            static_chunks(10, 2, chunk=0)

    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=8),
        st.one_of(st.none(), st.integers(min_value=1, max_value=17)),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, n, t, chunk):
        """Every iteration appears exactly once across all threads."""
        chunks = static_chunks(n, t, chunk)
        seen = sorted(i for rs in chunks for r in rs for i in r)
        assert seen == list(range(n))


@pytest.mark.parametrize("schedule", ["static", "dynamic", "guided"])
class TestForLoop:
    def test_all_iterations_execute_once(self, schedule):
        hits = []
        lock = threading.Lock()

        def body():
            def item(i):
                with lock:
                    hits.append(i)

            omp.for_loop(37, item, schedule=schedule, chunk=2)

        omp.parallel(body, num_threads=3)
        assert sorted(hits) == list(range(37))

    def test_work_actually_distributed(self, schedule):
        by_thread = {}
        lock = threading.Lock()

        def body():
            tid = omp.omp_get_thread_num()

            def item(i):
                with lock:
                    by_thread.setdefault(tid, []).append(i)

            omp.for_loop(40, item, schedule=schedule, chunk=1)

        omp.parallel(body, num_threads=4)
        # Static guarantees spread; dynamic/guided at least allow it. Check
        # no thread did everything (40 iterations, 4 threads).
        if schedule == "static":
            assert len(by_thread) == 4

    def test_sequence_input(self, schedule):
        items = ["a", "b", "c", "d", "e"]
        seen = []
        lock = threading.Lock()

        def body():
            omp.for_loop(items, lambda x: (lock.acquire(), seen.append(x), lock.release()),
                         schedule=schedule)

        omp.parallel(body, num_threads=2)
        assert sorted(seen) == sorted(items)

    def test_reduction_sum(self, schedule):
        def body():
            return omp.for_loop(101, lambda i: i, schedule=schedule,
                                chunk=5, reduction="+")

        res = omp.parallel(body, num_threads=4)
        assert res == [5050] * 4

    def test_reduction_max(self, schedule):
        data = [3, 1, 4, 1, 5, 9, 2, 6]

        def body():
            return omp.for_loop(data, lambda x: x, schedule=schedule, reduction="max")

        assert omp.parallel(body, num_threads=3) == [9, 9, 9]


class TestForLoopEdgeCases:
    def test_outside_parallel_region_rejected(self):
        with pytest.raises(WorksharingError):
            omp.for_loop(10, lambda i: None)

    def test_unknown_schedule(self):
        with pytest.raises(omp.ParallelRegionError):
            omp.parallel(lambda: omp.for_loop(5, lambda i: None, schedule="magic"),
                         num_threads=1)

    def test_unknown_reduction(self):
        with pytest.raises(omp.ParallelRegionError):
            omp.parallel(lambda: omp.for_loop(5, lambda i: i, reduction="avg"),
                         num_threads=1)

    def test_reduction_with_nowait_rejected(self):
        with pytest.raises(omp.ParallelRegionError):
            omp.parallel(
                lambda: omp.for_loop(5, lambda i: i, reduction="+", nowait=True),
                num_threads=1,
            )

    def test_zero_iterations(self):
        omp.parallel(lambda: omp.for_loop(0, lambda i: 1 / 0), num_threads=2)

    def test_nowait_skips_barrier(self):
        """With nowait, a fast thread proceeds past the loop while a slow
        thread is still inside it."""
        import time

        progressed = threading.Event()

        def body():
            tid = omp.omp_get_thread_num()

            def item(i):
                # Static default: thread 0 gets iteration 0, thread 1 gets 1.
                if omp.omp_get_thread_num() == 1:
                    # Slow thread: wait to see if the other escaped the loop.
                    assert progressed.wait(timeout=5)

            omp.for_loop(2, item, nowait=True)
            if tid == 0:
                progressed.set()
            omp.barrier()

        omp.parallel(body, num_threads=2)

    def test_consecutive_loops_match_by_arrival_order(self):
        totals = []
        lock = threading.Lock()

        def body():
            a = omp.for_loop(10, lambda i: i, reduction="+")
            b = omp.for_loop(20, lambda i: i, reduction="+")
            with lock:
                totals.append((a, b))

        omp.parallel(body, num_threads=3)
        assert totals == [(45, 190)] * 3

    def test_reduction_init(self):
        def body():
            return omp.for_loop(4, lambda i: 1, reduction="+", reduction_init=0)

        assert omp.parallel(body, num_threads=2) == [4, 4]


class TestSectionsSingleMaster:
    def test_sections_each_runs_once(self):
        counts = [omp.Atomic(0) for _ in range(5)]

        def body():
            omp.sections([lambda c=c: c.add(1) for c in counts])

        omp.parallel(body, num_threads=3)
        assert [c.value for c in counts] == [1] * 5

    def test_sections_results_broadcast(self):
        def body():
            return omp.sections([lambda: "a", lambda: "b"])

        assert omp.parallel(body, num_threads=2) == [["a", "b"], ["a", "b"]]

    def test_sections_outside_region(self):
        with pytest.raises(WorksharingError):
            omp.sections([lambda: 1])

    def test_single_runs_once_broadcasts_result(self):
        count = omp.Atomic(0)

        def body():
            return omp.single(lambda: count.add(1))

        res = omp.parallel(body, num_threads=4)
        assert count.value == 1
        assert res == [1, 1, 1, 1]

    def test_single_nowait_nonexecutors_get_none(self):
        def body():
            return omp.single(lambda: "mine", nowait=True)

        res = omp.parallel(body, num_threads=3)
        assert res.count("mine") == 1
        assert res.count(None) == 2

    def test_master_only_thread_zero(self):
        res = omp.parallel(lambda: omp.master(lambda: "m"), num_threads=3)
        assert res[0] == "m"
        assert res[1:] == [None, None]

    def test_single_outside_region(self):
        with pytest.raises(WorksharingError):
            omp.single(lambda: 1)

    def test_master_outside_region(self):
        with pytest.raises(WorksharingError):
            omp.master(lambda: 1)
