"""Tests for schedule(runtime) and the run-sched ICVs."""

import threading

import pytest

import repro.openmp as omp


@pytest.fixture(autouse=True)
def restore_schedule():
    kind, chunk = omp.omp_get_schedule()
    yield
    omp.omp_set_schedule(kind, chunk)


class TestIcvApi:
    def test_set_get_roundtrip(self):
        omp.omp_set_schedule("guided", 4)
        assert omp.omp_get_schedule() == ("guided", 4)

    def test_default_is_static(self):
        assert omp.omp_get_schedule()[0] == "static"

    def test_validation(self):
        with pytest.raises(ValueError):
            omp.omp_set_schedule("chaotic")
        with pytest.raises(ValueError):
            omp.omp_set_schedule("static", 0)


class TestRuntimeSchedule:
    def test_runtime_resolves_to_icv(self):
        omp.omp_set_schedule("dynamic", 2)
        hits = []
        lock = threading.Lock()

        def body():
            def item(i):
                with lock:
                    hits.append(i)

            omp.for_loop(20, item, schedule="runtime")

        omp.parallel(body, num_threads=3)
        assert sorted(hits) == list(range(20))

    def test_runtime_schedule_captured_at_fork(self):
        """ICVs copy into the team at fork: mutating the global mid-region
        does not change a running team's resolution."""
        omp.omp_set_schedule("static", None)
        resolved = []

        def body():
            if omp.omp_get_thread_num() == 0:
                omp.omp_set_schedule("guided", 3)  # mutate the global
            omp.barrier()
            # still resolves via the team's captured ICVs -> static
            total = omp.for_loop(10, lambda i: i, schedule="runtime", reduction="+")
            resolved.append(total)

        omp.parallel(body, num_threads=2)
        assert resolved == [45, 45]

    def test_explicit_chunk_overrides_icv_chunk(self):
        omp.omp_set_schedule("dynamic", 5)

        def body():
            return omp.for_loop(12, lambda i: i, schedule="runtime", chunk=1,
                                reduction="+")

        assert omp.parallel(body, num_threads=2) == [66, 66]

    def test_compiled_runtime_schedule(self):
        from repro.compiler import exec_omp
        from repro.core import PjRuntime

        omp.omp_set_schedule("guided", 2)
        rt = PjRuntime()
        try:
            ns = exec_omp(
                "def f(n):\n"
                "    total = 0\n"
                "    #omp parallel for num_threads(3) schedule(runtime) reduction(+:total)\n"
                "    for i in range(n):\n"
                "        total += i\n"
                "    return total\n",
                runtime=rt,
            )
            assert ns["f"](30) == sum(range(30))
        finally:
            rt.shutdown(wait=False)


class TestTracebackFidelity:
    def test_generated_source_visible_in_tracebacks(self):
        import traceback

        from repro.compiler import exec_omp
        from repro.core import PjRuntime, RegionFailedError

        rt = PjRuntime()
        rt.create_worker("worker", 1)
        try:
            ns = exec_omp(
                "def f():\n"
                "    #omp target virtual(worker)\n"
                "    boom = 1 / 0\n",
                runtime=rt,
                filename="<omp traceback-demo>",
            )
            with pytest.raises(RegionFailedError) as ei:
                ns["f"]()
            tb_text = "".join(
                traceback.format_exception(type(ei.value.cause), ei.value.cause,
                                            ei.value.cause.__traceback__)
            )
            # The generated line's text appears, thanks to linecache.
            assert "boom = 1 / 0" in tb_text
        finally:
            rt.shutdown(wait=False)
