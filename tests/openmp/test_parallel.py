"""Tests for the parallel construct (fork-join)."""

import threading

import pytest

import repro.openmp as omp


class TestFork:
    def test_body_runs_once_per_thread(self):
        hits = []
        lock = threading.Lock()

        def body(tid):
            with lock:
                hits.append(tid)

        omp.parallel(body, num_threads=4)
        assert sorted(hits) == [0, 1, 2, 3]

    def test_master_is_encountering_thread(self):
        """Thread 0 is the caller itself — the fork-join property the paper
        identifies as the EDT blocker."""
        me = threading.current_thread()
        threads = {}

        def body(tid):
            threads[tid] = threading.current_thread()

        omp.parallel(body, num_threads=3)
        assert threads[0] is me
        assert threads[1] is not me and threads[2] is not me

    def test_join_is_synchronous(self):
        """parallel() does not return until every member finished — there is
        no nowait/async clause on parallel (paper §I)."""
        import time

        done = []

        def body(tid):
            if tid != 0:
                time.sleep(0.1)
            done.append(tid)

        t0 = time.monotonic()
        omp.parallel(body, num_threads=3)
        assert time.monotonic() - t0 >= 0.1
        assert len(done) == 3

    def test_results_by_thread(self):
        res = omp.parallel(lambda tid: tid * 10, num_threads=4)
        assert res == [0, 10, 20, 30]

    def test_zero_arg_body(self):
        res = omp.parallel(lambda: omp.omp_get_thread_num(), num_threads=3)
        assert sorted(res) == [0, 1, 2]

    def test_if_clause_false_serialises(self):
        res = omp.parallel(
            lambda: (omp.omp_get_num_threads(), omp.omp_in_parallel()),
            num_threads=4,
            if_clause=False,
        )
        assert res == [(1, False)]

    def test_default_team_size_from_icv(self):
        omp.omp_set_num_threads(3)
        try:
            res = omp.parallel(lambda: omp.omp_get_num_threads())
            assert res == [3, 3, 3]
        finally:
            omp.omp_set_num_threads(4)

    def test_invalid_num_threads(self):
        with pytest.raises(ValueError):
            omp.parallel(lambda: None, num_threads=0)


class TestNesting:
    def test_nested_regions(self):
        levels = []

        def inner():
            levels.append(omp.omp_get_level())

        def outer(tid):
            if tid == 0:
                omp.parallel(inner, num_threads=2)

        omp.parallel(outer, num_threads=2)
        assert levels == [2, 2]

    def test_nesting_disabled_serialises_inner(self):
        omp.omp_set_nested(False)
        try:
            sizes = []

            def inner():
                sizes.append(omp.omp_get_num_threads())

            omp.parallel(lambda tid: omp.parallel(inner, num_threads=4) if tid == 0 else None,
                         num_threads=2)
            assert sizes == [1]
        finally:
            omp.omp_set_nested(True)

    def test_max_active_levels(self):
        omp.omp_set_max_active_levels(1)
        try:
            sizes = []
            omp.parallel(
                lambda tid: sizes.append(
                    omp.parallel(lambda: omp.omp_get_num_threads(), num_threads=4)[0]
                ) if tid == 0 else None,
                num_threads=2,
            )
            assert sizes == [1]
        finally:
            omp.omp_set_max_active_levels(4)

    def test_context_restored_after_region(self):
        omp.parallel(lambda: None, num_threads=2)
        assert omp.omp_get_level() == 0
        assert omp.omp_get_thread_num() == 0


class TestExceptions:
    def test_single_failure_propagates(self):
        with pytest.raises(omp.ParallelRegionError) as ei:
            omp.parallel(lambda tid: 1 / 0 if tid == 1 else None, num_threads=3)
        tids = [tid for tid, _ in ei.value.failures]
        assert 1 in tids

    def test_failure_does_not_deadlock_barriers(self):
        """A member dying before a barrier must not hang the team."""

        def body(tid):
            if tid == 1:
                raise ValueError("early death")
            omp.barrier()

        with pytest.raises(omp.ParallelRegionError):
            omp.parallel(body, num_threads=3)

    def test_master_failure(self):
        with pytest.raises(omp.ParallelRegionError):
            omp.parallel(lambda tid: 1 / 0 if tid == 0 else None, num_threads=2)

    def test_cause_is_first_failure(self):
        with pytest.raises(omp.ParallelRegionError) as ei:
            omp.parallel(lambda: 1 / 0, num_threads=1)
        assert isinstance(ei.value.__cause__, ZeroDivisionError)
