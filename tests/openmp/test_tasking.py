"""Tests for the task construct — the paper's §I foil.

"The effectiveness of OpenMP tasks are confined within an OpenMP parallel
region": orphaned tasks run sequentially; deferred tasks complete at
taskwait and barriers.
"""

import threading
import time

import pytest

import repro.openmp as omp


class TestOrphanedTasks:
    def test_orphaned_task_runs_inline_and_sequentially(self):
        """Paper §I: 'an orphaned task directive will execute sequentially'."""
        order = []
        h = omp.task(lambda: order.append(threading.current_thread()))
        order.append("after")
        assert h.done
        assert not h.deferred
        assert order == [threading.current_thread(), "after"]

    def test_serialised_team_runs_tasks_inline(self):
        def body():
            h = omp.task(lambda: "x")
            return h.deferred

        assert omp.parallel(body, num_threads=1) == [False]

    def test_false_if_clause_undeferred(self):
        def body():
            h = omp.task(lambda: threading.current_thread(), if_clause=False)
            return h.result() is threading.current_thread()

        assert all(omp.parallel(body, num_threads=2))

    def test_taskwait_outside_region_noop(self):
        assert omp.taskwait() == 0

    def test_orphaned_task_result_and_error(self):
        assert omp.task(lambda: 42).result() == 42
        h = omp.task(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            h.result()


class TestDeferredTasks:
    def test_tasks_deferred_inside_region(self):
        def body():
            def spawn():
                return omp.task(lambda: None).deferred

            deferred = omp.single(spawn)
            omp.taskwait()
            return deferred

        res = omp.parallel(body, num_threads=3)
        assert res == [True, True, True]

    def test_single_plus_taskwait_runs_each_task_once(self):
        results = []
        lock = threading.Lock()

        def body():
            def spawn():
                for i in range(8):
                    omp.task(lambda i=i: (lock.acquire(), results.append(i), lock.release()))

            omp.single(spawn, nowait=True)
            omp.taskwait()

        omp.parallel(body, num_threads=4)
        assert sorted(results) == list(range(8))

    def test_every_member_spawning_multiplies_tasks(self):
        """Without single, the region body runs per thread — a property the
        paper's virtual targets don't have."""
        count = omp.Atomic(0)

        def body():
            omp.task(lambda: count.add(1))
            omp.taskwait()

        omp.parallel(body, num_threads=3)
        assert count.value == 3

    def test_tasks_complete_at_barrier(self):
        done = []

        def body():
            def spawn():
                omp.task(lambda: done.append(1))

            omp.single(spawn, nowait=True)
            omp.barrier()  # OpenMP: all tasks complete at a barrier
            return len(done)

        res = omp.parallel(body, num_threads=2)
        assert all(n == 1 for n in res)

    def test_tasks_complete_at_region_end_via_implied_barrier(self):
        # for_loop's implied barrier also drains tasks
        done = []

        def body():
            omp.task(lambda: done.append(1))
            omp.for_loop(4, lambda i: None)
            return len(done)

        res = omp.parallel(body, num_threads=2)
        assert all(n == 2 for n in res)

    def test_task_results_via_handles(self):
        def body():
            def spawn():
                return [omp.task(lambda i=i: i * i) for i in range(4)]

            handles = omp.single(spawn)
            omp.taskwait()
            return [h.result(timeout=5) for h in handles]

        res = omp.parallel(body, num_threads=2)
        assert res == [[0, 1, 4, 9]] * 2

    def test_task_error_reported_on_handle(self):
        def body():
            def spawn():
                return omp.task(lambda: 1 / 0)

            h = omp.single(spawn)
            omp.taskwait()
            return h

        handles = omp.parallel(body, num_threads=2)
        with pytest.raises(ZeroDivisionError):
            handles[0].result(timeout=5)

    def test_nested_task_spawning(self):
        """A task may spawn tasks; taskwait keeps draining until quiet."""
        hits = []
        lock = threading.Lock()

        def body():
            def spawn():
                def outer_task():
                    with lock:
                        hits.append("outer")
                    omp.task(lambda: hits.append("inner"))

                omp.task(outer_task)

            omp.single(spawn, nowait=True)
            omp.taskwait()

        omp.parallel(body, num_threads=2)
        assert sorted(hits) == ["inner", "outer"]

    def test_work_stealing_across_members(self):
        """Tasks spawned by one member may be executed by others (the team
        pool is shared)."""
        executors = set()
        lock = threading.Lock()

        def body():
            def spawn():
                for _ in range(12):
                    def t():
                        with lock:
                            executors.add(threading.current_thread().name)
                        time.sleep(0.002)

                    omp.task(t)

            omp.single(spawn, nowait=True)
            omp.taskwait()

        omp.parallel(body, num_threads=4)
        # At least the spawning thread helped; usually several do.
        assert len(executors) >= 1
        assert all(name.startswith(("omp-team", "MainThread")) for name in executors)
