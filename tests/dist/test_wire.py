"""Wire-format unit tests: serialization, exception shipping, messages."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.core.errors import RemoteExecutionError, SerializationError
from repro.dist import wire


class TestDumpsLoads:
    def test_round_trip(self):
        payload = ({"a": [1, 2, 3]}, (4, 5), {"k": "v"})
        assert wire.loads(wire.dumps(payload)) == payload

    def test_unpicklable_raises_serialization_error(self):
        with pytest.raises(SerializationError) as exc_info:
            wire.dumps(threading.Lock(), what="payload of region 'r'")
        assert "payload of region 'r'" in str(exc_info.value)
        assert exc_info.value.__cause__ is not None

    def test_corrupt_blob_raises_serialization_error(self):
        with pytest.raises(SerializationError):
            wire.loads(b"not a pickle")

    @pytest.mark.skipif(not wire.HAVE_CLOUDPICKLE, reason="cloudpickle absent")
    def test_lambda_round_trip_with_cloudpickle(self):
        fn = wire.loads(wire.dumps(lambda x: x + 1))
        assert fn(41) == 42


class TestExceptionShipping:
    def test_picklable_exception_survives_with_traceback(self):
        try:
            raise ValueError("kapow")
        except ValueError as exc:
            blob, text, tb = wire.pack_exception(exc)
        assert blob is not None
        assert "kapow" in text
        assert "ValueError" in tb
        rebuilt = wire.unpack_exception(blob, text, tb)
        assert isinstance(rebuilt, ValueError)
        assert rebuilt.remote_traceback == tb

    def test_unpicklable_exception_degrades_to_remote_error(self):
        class Cursed(Exception):
            def __init__(self):
                super().__init__("cursed")
                self.lock = threading.Lock()

        try:
            raise Cursed()
        except Cursed as exc:
            blob, text, tb = wire.pack_exception(exc)
        assert blob is None
        rebuilt = wire.unpack_exception(blob, text, tb)
        assert isinstance(rebuilt, RemoteExecutionError)
        assert "cursed" in str(rebuilt)
        assert rebuilt.remote_traceback == tb


class TestMessages:
    @pytest.mark.parametrize(
        "msg",
        [
            wire.SyncMsg(123),
            wire.SyncAck(456, 789),
            wire.TaskMsg(1, "r", "f.py:3", b"blob", True),
            wire.ResultMsg(1, True, b"ok", None, None, None, [], 0),
            wire.StopMsg(),
            wire.PingMsg(42),
            wire.PongMsg(42, 99),
            wire.CancelMsg(7),
        ],
        ids=lambda m: type(m).__name__,
    )
    def test_messages_pickle_round_trip(self, msg):
        clone = pickle.loads(pickle.dumps(msg))
        assert type(clone) is type(msg)
        for field in msg.__slots__:
            assert getattr(clone, field) == getattr(msg, field)

    def test_task_msg_fields(self):
        msg = wire.TaskMsg(9, "region", "a.py:1", b"x", False)
        assert (msg.seq, msg.name, msg.source) == (9, "region", "a.py:1")
        assert msg.blob == b"x" and msg.trace is False
