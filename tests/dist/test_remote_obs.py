"""Clock sync, worker event capture, and cross-process trace merging."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.region import TargetRegion
from repro.dist.remote_obs import (
    WorkerEventLog,
    estimate_offset_ns,
    merge_worker_events,
    worker_track,
)
from repro.obs import EventKind
from repro.obs.recorder import TraceSession

from . import bodies


class TestOffsetEstimation:
    def test_midpoint_formula(self):
        # Parent sends at 100, receives at 300; the worker read its clock at
        # the (assumed) midpoint 200, reporting 5200 -> offset -5000.
        assert estimate_offset_ns(100, 300, 5200) == -5000

    def test_identical_clocks_give_zero_offset(self):
        assert estimate_offset_ns(100, 200, 150) == 0


class TestWorkerTrack:
    def test_naming(self):
        assert worker_track("gpu", 3) == "gpu[w3]"


class TestWorkerEventLog:
    def test_records_and_drains(self):
        log = WorkerEventLog()
        log.emit(EventKind.EXEC_BEGIN, region=7, name="r")
        log.emit(EventKind.EXEC_END, region=7, name="r", arg="completed")
        items = log.drain()
        assert [i[0] for i in items] == [
            int(EventKind.EXEC_BEGIN), int(EventKind.EXEC_END),
        ]
        assert items[0][2] == 7 and items[1][4] == "completed"
        assert log.drain() == []  # drained means drained

    def test_bounded(self):
        log = WorkerEventLog(limit=2)
        for _ in range(5):
            log.emit(EventKind.EXEC_BEGIN)
        assert len(log.items) == 2
        assert log.dropped == 3


class TestMerge:
    def test_offset_track_and_thread_applied(self):
        session = TraceSession()
        session.start()
        merged = merge_worker_events(
            session,
            [(int(EventKind.EXEC_BEGIN), 1000, 7, "r", None)],
            offset_ns=500, track="pool[w0]", thread="pid 42",
        )
        session.stop()
        assert merged == 1
        (event,) = session.events()
        assert event.ts == 1500
        assert event.target == "pool[w0]"
        assert event.thread == "pid 42"
        assert event.kind is EventKind.EXEC_BEGIN

    def test_unknown_kind_values_skipped(self):
        session = TraceSession()
        session.start()
        merged = merge_worker_events(
            session,
            [(10_000, 0, None, None, None),
             (int(EventKind.EXEC_END), 1, None, None, None)],
            offset_ns=0, track="t", thread="x",
        )
        session.stop()
        assert merged == 1


class TestEndToEndTrace:
    def test_remote_region_has_full_lifecycle_on_one_clock(self, proc_rt):
        session = obs.enable()
        try:
            proc_rt.invoke_target_block("pool", TargetRegion(bodies.sleepy, 0.01))
            events = list(session.events())
        finally:
            obs.disable()
        kinds = {e.kind.name for e in events}
        assert {"REGION_SUBMIT", "ENQUEUE", "DEQUEUE"} <= kinds
        execs = [e for e in events if "[w" in (e.target or "")
                 and e.kind.name in ("EXEC_BEGIN", "EXEC_END")]
        assert len(execs) == 2, f"worker exec events missing: {kinds}"
        assert execs[0].thread.startswith("pid ")
        # Merged worker timestamps must sort after the parent-side dispatch
        # events -- the whole point of the clock handshake.
        dequeues = [e for e in events if e.kind.name == "DEQUEUE"]
        assert min(e.ts for e in execs) >= max(e.ts for e in dequeues)

    def test_chrome_export_gives_workers_their_own_track(self, proc_rt):
        session = obs.enable()
        try:
            proc_rt.invoke_target_block("pool", TargetRegion(bodies.sleepy, 0.01))
            doc = obs.to_chrome_trace(session.events())
        finally:
            obs.disable()
        names = {
            ev["args"]["name"] for ev in doc["traceEvents"]
            if ev.get("ph") == "M" and ev.get("name") == "process_name"
        }
        assert any("[w" in n for n in names), names
