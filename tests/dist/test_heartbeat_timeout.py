"""Supervisor heartbeat-timeout policy: slow-but-alive vs wedged vs dead.

Regression tests for the sweep's decision table.  The unit half drives
:meth:`Supervisor.sweep` over scripted fake slots (the documented slot
interface), so every branch is exercised deterministically — no timing, no
real processes.  The integration half proves the two user-visible halves of
the contract on a real process target: a *busy* worker that has stopped
answering pings is never killed by the supervisor (a transient stall must
not become a :class:`WorkerCrashedError`), while a worker whose transport
actually dies mid-region fails the region promptly — crash and stall stay
distinguishable.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import PjRuntime
from repro.core.errors import RegionFailedError, WorkerCrashedError
from repro.core.region import TargetRegion
from repro.dist.supervisor import Supervisor

from . import bodies

STALE = 1000.0  # seconds of fabricated ping silence


class FakeSlot:
    """Scripted implementation of the supervisor's slot interface."""

    def __init__(self, *, connected=True, alive=True, busy=False,
                 silent_for=0.0, pongs_pending=0, disabled=False):
        self.lock = threading.RLock()
        self.index = 0
        self.pid = 4242
        self.disabled = disabled
        self.busy = busy
        self.last_pong = time.monotonic() - silent_for
        self._connected = connected
        self._alive = alive
        self._pongs = pongs_pending
        self.terminated = False
        self.pings = 0

    @property
    def connected(self):
        return self._connected

    def is_alive(self):
        return self._alive and not self.terminated

    def drain_control(self):
        if self._pongs:
            self._pongs -= 1
            self.last_pong = time.monotonic()

    def exit_label(self):
        return "scripted death"

    def terminate(self):
        self.terminated = True

    def send_ping(self):
        self.pings += 1


class FakeTarget:
    name = "fake"

    def __init__(self, *slots):
        self._slots = list(slots)
        self.respawned = []

    def _respawn_slot(self, slot):
        self.respawned.append(slot)


def sweep_once(slot) -> FakeTarget:
    target = FakeTarget(slot)
    Supervisor(target, interval=0.1, misses=2).sweep()
    return target


class TestSweepDecisionTable:
    def test_healthy_idle_slot_is_only_pinged(self):
        slot = FakeSlot()
        target = sweep_once(slot)
        assert not slot.terminated
        assert not target.respawned
        assert slot.pings == 1

    def test_busy_silent_slot_is_not_killed(self):
        # Slow-but-alive: silence during a long region is the deadline
        # machinery's problem (timeout=), never the supervisor's.
        slot = FakeSlot(busy=True, silent_for=STALE)
        target = sweep_once(slot)
        assert not slot.terminated
        assert not target.respawned

    def test_pending_pong_resets_the_silence_clock(self):
        # Slow-but-alive: the pong was in flight, not missing.  The sweep
        # must drain control *before* judging silence.
        slot = FakeSlot(silent_for=STALE, pongs_pending=1)
        target = sweep_once(slot)
        assert not slot.terminated
        assert not target.respawned

    def test_idle_wedged_slot_is_terminated_and_respawned(self):
        slot = FakeSlot(silent_for=STALE)
        target = sweep_once(slot)
        assert slot.terminated
        assert target.respawned == [slot]

    def test_idle_corpse_is_respawned_without_terminate(self):
        slot = FakeSlot(alive=False)
        target = sweep_once(slot)
        assert not slot.terminated
        assert target.respawned == [slot]

    def test_dead_busy_slot_is_left_to_the_shipper(self):
        # The shipper already watches a busy worker; a second respawn from
        # the supervisor would race it.
        slot = FakeSlot(alive=False, busy=True)
        target = sweep_once(slot)
        assert not slot.terminated
        assert not target.respawned
        assert slot.pings == 0

    def test_disabled_and_disconnected_slots_are_skipped(self):
        for slot in (FakeSlot(disabled=True), FakeSlot(connected=False)):
            target = sweep_once(slot)
            assert not slot.terminated
            assert not target.respawned
            assert slot.pings == 0


@pytest.fixture()
def quiet_rt():
    """1-worker process target whose own supervisor never fires during the
    test (60s interval) — sweeps below are driven by hand."""
    runtime = PjRuntime()
    runtime.create_process_worker("quiet", 1, heartbeat_interval=60.0)
    yield runtime
    runtime.shutdown(wait=False)


class TestRealTransport:
    def test_stalled_busy_worker_survives_manual_sweeps(self, quiet_rt):
        target = quiet_rt.get_target("quiet")
        region = TargetRegion(bodies.sleepy, 0.8, name="slow")
        quiet_rt.invoke_target_block("quiet", region, "nowait")
        slot = target._slots[0]
        deadline = time.monotonic() + 10.0
        while not slot.busy and time.monotonic() < deadline:
            time.sleep(0.01)
        assert slot.busy, "region never started"
        pid = slot.pid
        sup = Supervisor(target, interval=0.05, misses=1)
        for _ in range(5):
            with slot.lock:
                slot.last_pong = time.monotonic() - STALE  # fabricate silence
            sup.sweep()
        assert region.result(timeout=30.0) == 0.8
        assert slot.pid == pid
        assert target.restart_count == 0

    def test_dead_transport_mid_region_fails_fast_without_heartbeat(
        self, quiet_rt
    ):
        # Crash detection must not wait for a heartbeat miss: the shipper
        # sees the dead transport within its own poll tick.
        target = quiet_rt.get_target("quiet")
        region = TargetRegion(bodies.sleepy, 30.0, name="doomed")
        quiet_rt.invoke_target_block("quiet", region, "nowait")
        slot = target._slots[0]
        deadline = time.monotonic() + 10.0
        while not slot.busy and time.monotonic() < deadline:
            time.sleep(0.01)
        assert slot.busy, "region never started"
        start = time.monotonic()
        slot.process.terminate()
        with pytest.raises(RegionFailedError) as exc_info:
            region.result(timeout=30.0)
        elapsed = time.monotonic() - start
        assert isinstance(exc_info.value.__cause__, WorkerCrashedError)
        assert elapsed < 15.0, f"crash detection took {elapsed:.1f}s"
