"""ProcessTarget behaviour: scheduling modes, payload policy, backpressure."""

from __future__ import annotations

import time

import pytest

from repro.core import PjRuntime, virtual_target_create_process_worker
from repro.core.errors import (
    AwaitTimeoutError,
    QueueFullError,
    RegionFailedError,
    RuntimeStateError,
    SerializationError,
    TargetExistsError,
)
from repro.core.region import TargetRegion
from repro.dist import ProcessTarget
from repro.dist.wire import HAVE_CLOUDPICKLE

from . import bodies


class TestBasicExecution:
    def test_default_mode_returns_result(self, proc_rt):
        region = proc_rt.invoke_target_block("pool", TargetRegion(bodies.square, 7))
        assert region.result() == 49

    def test_args_and_kwargs_cross_the_wire(self, proc_rt):
        region = proc_rt.invoke_target_block(
            "pool", TargetRegion(bodies.sleepy, 0.0, value={"deep": [1, 2]})
        )
        assert region.result() == {"deep": [1, 2]}

    def test_nowait_returns_live_handle(self, proc_rt):
        handle = proc_rt.invoke_target_block(
            "pool", TargetRegion(bodies.square, 6), "nowait"
        )
        assert handle.result(timeout=30) == 36

    def test_name_as_and_wait_tag(self, proc_rt):
        for i in range(3):
            proc_rt.invoke_target_block(
                "pool", TargetRegion(bodies.square, i), "name_as", tag="batch"
            )
        proc_rt.wait_tag("batch", timeout=30)

    def test_regions_actually_run_in_other_processes(self, proc_rt):
        import os

        pids = {
            proc_rt.invoke_target_block(
                "pool", TargetRegion(bodies.worker_pid)
            ).result()
            for _ in range(3)
        }
        assert os.getpid() not in pids

    @pytest.mark.skipif(not HAVE_CLOUDPICKLE, reason="cloudpickle absent")
    def test_closures_work_with_cloudpickle(self, proc_rt):
        base = 100
        region = proc_rt.invoke_target_block("pool", lambda: base + 1)
        assert region.result() == 101


class TestFailurePolicy:
    def test_remote_exception_reraises_with_worker_traceback(self, proc_rt):
        with pytest.raises(RegionFailedError) as exc_info:
            proc_rt.invoke_target_block("pool", TargetRegion(bodies.boom, "ouch"))
        cause = exc_info.value.__cause__
        assert isinstance(cause, ValueError)
        assert "ouch" in str(cause)
        assert "bodies.py" in cause.remote_traceback

    def test_unpicklable_payload_rejected_with_guidance(self, proc_rt):
        import threading

        with pytest.raises(RegionFailedError) as exc_info:
            proc_rt.invoke_target_block(
                "pool", TargetRegion(bodies.sleepy, 0.0, value=threading.Lock())
            )
        assert isinstance(exc_info.value.__cause__, SerializationError)

    def test_unpicklable_result_becomes_typed_error(self, proc_rt):
        with pytest.raises(RegionFailedError) as exc_info:
            proc_rt.invoke_target_block("pool", TargetRegion(bodies.unpicklable_result))
        assert isinstance(exc_info.value.__cause__, SerializationError)

    def test_unpicklable_exception_degrades_not_hangs(self, proc_rt):
        from repro.core.errors import RemoteExecutionError

        with pytest.raises(RegionFailedError) as exc_info:
            proc_rt.invoke_target_block("pool", TargetRegion(bodies.raise_unpicklable))
        cause = exc_info.value.__cause__
        # cloudpickle can ship the local exception class; plain pickle cannot
        # and must degrade to the typed remote error -- either way no hang.
        assert isinstance(cause, Exception)
        if isinstance(cause, RemoteExecutionError):
            assert "cursed" in str(cause)

    def test_worker_failure_does_not_poison_the_pool(self, proc_rt):
        with pytest.raises(RegionFailedError):
            proc_rt.invoke_target_block("pool", TargetRegion(bodies.boom))
        region = proc_rt.invoke_target_block("pool", TargetRegion(bodies.square, 3))
        assert region.result() == 9


class TestDeadlines:
    def test_timeout_on_stuck_worker_fires_promptly(self, solo_rt):
        start = time.monotonic()
        with pytest.raises(AwaitTimeoutError):
            solo_rt.invoke_target_block(
                "solo", TargetRegion(bodies.stubborn_sleep), timeout=1.0
            )
        assert time.monotonic() - start < 20.0

    def test_lane_reclaimed_after_stuck_worker(self, solo_rt):
        with pytest.raises(AwaitTimeoutError):
            solo_rt.invoke_target_block(
                "solo", TargetRegion(bodies.stubborn_sleep), timeout=1.0
            )
        target = solo_rt.get_target("solo")
        region = solo_rt.invoke_target_block("solo", TargetRegion(bodies.square, 5))
        assert region.result(timeout=30) == 25
        assert target.restart_count >= 1

    def test_cooperative_cancellation_crosses_the_process_boundary(self, solo_rt):
        handle = solo_rt.invoke_target_block(
            "solo", TargetRegion(bodies.cooperative_loop), "nowait"
        )
        deadline = time.monotonic() + 10.0
        while not handle.state.name == "RUNNING" and time.monotonic() < deadline:
            time.sleep(0.01)
        handle.request_cancel()
        assert handle.wait(10.0)
        assert handle.result() == "cancelled"


class TestAffinityAndShape:
    def test_no_inline_elision_for_process_targets(self):
        assert ProcessTarget.supports_inline is False
        assert ProcessTarget.supports_pumping is False
        assert ProcessTarget.kind == "process"

    def test_pumping_refused_with_guidance(self, proc_rt):
        target = proc_rt.get_target("pool")
        with pytest.raises(RuntimeStateError):
            target.process_one()
        with pytest.raises(RuntimeStateError):
            target.drain()

    def test_describe_reports_process_taxonomy(self, proc_rt):
        text = proc_rt.get_target("pool").describe()
        assert "kind=process" in text
        assert "pool=2" in text
        assert "restarts=" in text

    def test_diagnostic_dump_includes_process_target(self, proc_rt):
        dump = proc_rt.diagnostic_dump()
        assert "kind=process" in dump


class TestRegistration:
    def test_api_helper_registers_and_duplicate_name_cleans_up(self):
        rt = PjRuntime()
        try:
            target = virtual_target_create_process_worker("dup", 1, runtime=rt)
            assert isinstance(target, ProcessTarget)
            with pytest.raises(TargetExistsError):
                virtual_target_create_process_worker("dup", 1, runtime=rt)
            region = rt.invoke_target_block("dup", TargetRegion(bodies.square, 2))
            assert region.result() == 4
        finally:
            rt.shutdown(wait=False)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ProcessTarget("bad", 0)
        with pytest.raises(ValueError):
            ProcessTarget("bad", 1, max_restarts=-1)
        with pytest.raises(ValueError):
            ProcessTarget("bad", 1, cancel_grace=0)


class TestBackpressure:
    def test_reject_policy_raises_queue_full(self):
        rt = PjRuntime()
        try:
            rt.create_process_worker(
                "tight", 1, queue_capacity=1, rejection_policy="reject"
            )
            # Occupy the single worker, then fill the single queue slot.
            busy = rt.invoke_target_block(
                "tight", TargetRegion(bodies.sleepy, 3.0), "nowait"
            )
            deadline = time.monotonic() + 10.0
            while busy.state.name == "PENDING" and time.monotonic() < deadline:
                time.sleep(0.01)
            rt.invoke_target_block(
                "tight", TargetRegion(bodies.square, 1), "nowait"
            )
            with pytest.raises(QueueFullError):
                for _ in range(50):
                    rt.invoke_target_block(
                        "tight", TargetRegion(bodies.square, 2), "nowait"
                    )
        finally:
            rt.shutdown(wait=False)
