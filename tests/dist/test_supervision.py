"""Crash handling: WorkerCrashedError, supervisor restarts, restart budgets."""

from __future__ import annotations

import time

import pytest

from repro.core import PjRuntime
from repro.core.errors import (
    RegionFailedError,
    TargetShutdownError,
    WorkerCrashedError,
)
from repro.core.region import TargetRegion

from . import bodies


def _wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestMidRegionCrash:
    def test_os_exit_surfaces_worker_crashed_error_not_a_hang(self, solo_rt):
        start = time.monotonic()
        with pytest.raises(RegionFailedError) as exc_info:
            solo_rt.invoke_target_block(
                "solo", TargetRegion(bodies.hard_exit, 7), timeout=30.0
            )
        elapsed = time.monotonic() - start
        cause = exc_info.value.__cause__
        assert isinstance(cause, WorkerCrashedError)
        assert cause.exitcode == 7
        assert cause.target_name == "solo"
        assert elapsed < 15.0, f"crash detection took {elapsed:.1f}s"

    def test_pool_recovers_after_crash(self, solo_rt):
        with pytest.raises(RegionFailedError):
            solo_rt.invoke_target_block("solo", TargetRegion(bodies.hard_exit))
        region = solo_rt.invoke_target_block("solo", TargetRegion(bodies.square, 8))
        assert region.result(timeout=30) == 64
        assert solo_rt.get_target("solo").restart_count >= 1

    def test_crash_increments_crash_stats(self, solo_rt):
        with pytest.raises(RegionFailedError):
            solo_rt.invoke_target_block("solo", TargetRegion(bodies.hard_exit))
        assert solo_rt.get_target("solo").stats["worker_crashes"] >= 1


class TestIdleCrash:
    def test_supervisor_respawns_idle_corpse(self, solo_rt):
        target = solo_rt.get_target("solo")
        # Run something so the worker is definitely up, then note its pid.
        solo_rt.invoke_target_block("solo", TargetRegion(bodies.square, 1))
        slot = target._slots[0]
        old_pid = slot.pid
        slot.process.terminate()  # idle murder: no shipper is watching
        assert _wait_until(
            lambda: slot.process is not None
            and slot.process.is_alive()
            and slot.pid != old_pid
        ), "supervisor did not respawn the idle worker"
        region = solo_rt.invoke_target_block("solo", TargetRegion(bodies.square, 4))
        assert region.result(timeout=30) == 16


class TestRestartBudget:
    def test_exhausted_budget_fails_backlog_and_refuses_posts(self):
        rt = PjRuntime()
        try:
            rt.create_process_worker("frail", 1, max_restarts=0)
            with pytest.raises(RegionFailedError) as exc_info:
                rt.invoke_target_block(
                    "frail", TargetRegion(bodies.hard_exit), timeout=30.0
                )
            assert isinstance(exc_info.value.__cause__, WorkerCrashedError)
            target = rt.get_target("frail")
            assert _wait_until(lambda: not target.alive), (
                "target should declare itself dead once every lane is disabled"
            )
            with pytest.raises(TargetShutdownError):
                target.post(TargetRegion(bodies.square, 1))
        finally:
            rt.shutdown(wait=False)

    def test_worker_crashed_error_carries_forensics(self):
        err = WorkerCrashedError(
            "pool", 2, pid=1234, exitcode=-9, region_name="r", detail="sigkill"
        )
        text = str(err)
        for fragment in ("pool", "worker 2", "1234", "-9", "'r'", "sigkill"):
            assert fragment in text
