"""Region bodies shipped to worker processes by the dist tests.

Module-level functions, importable as ``tests.dist.bodies`` from a spawned
child (sys.path travels with the spawn preamble), so they cross the wire by
reference under plain pickle and by value under cloudpickle alike.
"""

from __future__ import annotations

import os
import time

from repro.core.region import current_region


def square(x):
    """Trivial CPU body."""
    return x * x


def add(a, b):
    """Body with two positional args."""
    return a + b


def sleepy(seconds, value=None):
    """Sleep then return *value* (defaults to *seconds*)."""
    time.sleep(seconds)
    return seconds if value is None else value


def boom(message="kapow"):
    """Raise ValueError(message)."""
    raise ValueError(message)


def hard_exit(code=7):
    """Kill the worker process abruptly, mid-region (no cleanup, no excuses)."""
    os._exit(code)


def stubborn_sleep(seconds=300.0):
    """Sleep ignoring cooperative cancellation — simulates a stuck worker."""
    time.sleep(seconds)


def cooperative_loop(seconds=300.0):
    """Spin until cancelled (polls the region's cancel token); returns early
    with 'cancelled' when the token flips."""
    region = current_region()
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        if region is not None and region.cancel_token.cancelled:
            return "cancelled"
        time.sleep(0.01)
    return "timeout"


def worker_pid():
    """Report the executing process's pid."""
    return os.getpid()


def unpicklable_result():
    """Return something no pickler can ship (a thread lock)."""
    import threading

    return threading.Lock()


def raise_unpicklable():
    """Raise an exception instance that cannot be pickled."""
    import threading

    class Cursed(Exception):
        def __init__(self):
            super().__init__("cursed")
            self.lock = threading.Lock()

    raise Cursed()
