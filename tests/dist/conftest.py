"""Fixtures for the dist suite: process runtimes + child-process leak guard."""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.core import PjRuntime


@pytest.fixture(autouse=True)
def no_child_process_leaks():
    """Every test must account for its worker processes.

    Terminated children take a moment to be reaped (``terminate`` is
    asynchronous and slot reaping uses bounded joins), so the guard polls
    before declaring a leak.
    """
    yield
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        leftovers = multiprocessing.active_children()
        if not leftovers:
            return
        time.sleep(0.05)
    leftovers = multiprocessing.active_children()
    for proc in leftovers:  # clean up so one leak doesn't cascade
        proc.terminate()
    assert not leftovers, f"leaked worker processes: {leftovers}"


@pytest.fixture()
def proc_rt():
    """Runtime with a 2-worker process target named 'pool'."""
    runtime = PjRuntime()
    runtime.create_process_worker("pool", 2, heartbeat_interval=0.25)
    yield runtime
    runtime.shutdown(wait=False)


@pytest.fixture()
def solo_rt():
    """Runtime with a 1-worker process target named 'solo' and a short
    cancel grace, for stuck-worker and crash-ordering tests."""
    runtime = PjRuntime()
    runtime.create_process_worker(
        "solo", 1, cancel_grace=1.0, heartbeat_interval=0.25
    )
    yield runtime
    runtime.shutdown(wait=False)
