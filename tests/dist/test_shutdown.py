"""Shutdown semantics across the process boundary: drain vs cancel."""

from __future__ import annotations

import time

import pytest

from repro.core import PjRuntime
from repro.core.errors import RegionCancelledError, TargetShutdownError
from repro.core.region import TargetRegion

from . import bodies


class TestGracefulShutdown:
    def test_wait_true_drains_the_backlog(self):
        rt = PjRuntime()
        rt.create_process_worker("pool", 2)
        handles = [
            rt.invoke_target_block(
                "pool", TargetRegion(bodies.square, i), "nowait"
            )
            for i in range(6)
        ]
        rt.shutdown(wait=True)
        assert [h.result() for h in handles] == [i * i for i in range(6)]

    def test_shutdown_is_idempotent(self):
        rt = PjRuntime()
        target = rt.create_process_worker("pool", 1)
        rt.shutdown(wait=True)
        target.shutdown(wait=True)  # second call must be a no-op
        target.shutdown(wait=False)


class TestHardShutdown:
    def test_wait_false_cancels_remote_backlog_fast(self):
        rt = PjRuntime()
        rt.create_process_worker("pool", 1)
        busy = rt.invoke_target_block(
            "pool", TargetRegion(bodies.sleepy, 60.0), "nowait"
        )
        deadline = time.monotonic() + 15.0
        while busy.state.name == "PENDING" and time.monotonic() < deadline:
            time.sleep(0.01)
        backlog = [
            rt.invoke_target_block(
                "pool", TargetRegion(bodies.sleepy, 60.0), "nowait"
            )
            for _ in range(3)
        ]
        start = time.monotonic()
        rt.shutdown(wait=False)
        for handle in backlog:
            assert handle.wait(10.0), "queued region left unresolved"
            with pytest.raises(RegionCancelledError):
                handle.result()
        assert busy.wait(10.0), "in-flight region left unresolved"
        with pytest.raises((RegionCancelledError, Exception)):
            busy.result()
        assert time.monotonic() - start < 15.0

    def test_in_flight_region_fails_with_shutdown_error(self):
        rt = PjRuntime()
        rt.create_process_worker("pool", 1)
        busy = rt.invoke_target_block(
            "pool", TargetRegion(bodies.sleepy, 60.0), "nowait"
        )
        deadline = time.monotonic() + 15.0
        while busy.state.name != "RUNNING" and time.monotonic() < deadline:
            time.sleep(0.01)
        rt.shutdown(wait=False)
        assert busy.wait(10.0)
        assert isinstance(busy.exception, TargetShutdownError)

    def test_posts_after_shutdown_refused(self):
        rt = PjRuntime()
        target = rt.create_process_worker("pool", 1)
        rt.shutdown(wait=False)
        with pytest.raises(TargetShutdownError):
            target.post(TargetRegion(bodies.square, 1))
