"""Tests for repro.dist — process-backed virtual targets."""
