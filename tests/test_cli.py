"""Tests for the figure-regeneration CLI."""

import pytest

from repro.cli import main


class TestFigures:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "single-threaded" in out
        assert "request3" in out

    def test_fig7_small(self, capsys):
        assert main([
            "fig7", "--kernel", "series", "--rates", "10,40",
            "--events", "40", "--approaches", "sequential,pyjama_async",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 7 [series]" in out
        assert out.count("|") >= 6

    def test_fig7_bad_approach(self, capsys):
        assert main([
            "fig7", "--approaches", "warp_drive", "--rates", "10", "--events", "5",
        ]) == 2

    def test_fig8_small(self, capsys):
        assert main(["fig8", "--rates", "10,80", "--events", "40"]) == 0
        out = capsys.readouterr().out
        assert "async-par" in out
        assert "x" in out

    def test_fig9_small(self, capsys):
        assert main(["fig9", "--workers", "2,16", "--users", "30"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "pyjama" in out

    def test_rates_parse_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig7", "--rates", "ten,twenty"])


class TestTimeline:
    def test_timeline_renders_lanes(self, capsys):
        assert main([
            "timeline", "--approach", "pyjama_async", "--rate", "30",
            "--events", "4", "--width", "48",
        ]) == 0
        out = capsys.readouterr().out
        assert "edt |" in out
        assert "worker-0" in out
        assert "█" in out

    def test_timeline_sequential_edt_solid(self, capsys):
        assert main([
            "timeline", "--approach", "sequential", "--rate", "30",
            "--events", "4", "--width", "40",
        ]) == 0
        out = capsys.readouterr().out
        edt_line = next(l for l in out.splitlines() if l.strip().startswith("edt"))
        cells = edt_line.split("|")[1]
        assert cells.count("·") <= 2  # the EDT never gets a break

    def test_timeline_bad_approach(self):
        assert main(["timeline", "--approach", "nope"]) == 2

    def test_timeline_pumping_style(self, capsys):
        assert main([
            "timeline", "--approach", "pyjama_async", "--rate", "60",
            "--events", "4", "--width", "40", "--await-style", "pumping",
        ]) == 0
        out = capsys.readouterr().out
        assert "edt |" in out


class TestCompile:
    def test_compile_to_stdout(self, capsys, tmp_path):
        src = tmp_path / "app.py"
        src.write_text(
            "def f():\n"
            "    #omp target virtual(worker) nowait\n"
            "    work()\n"
        )
        assert main(["compile", str(src)]) == 0
        out = capsys.readouterr().out
        assert "import repro.compiler.bridge as __repro_omp__" in out
        assert "run_on('worker'" in out

    def test_compile_to_file_and_run(self, tmp_path, capsys):
        src = tmp_path / "app.py"
        src.write_text(
            "from repro.core import default_runtime, reset_default_runtime\n"
            "reset_default_runtime()\n"
            "default_runtime().create_worker('worker', 1)\n"
            "def f():\n"
            "    #omp target virtual(worker)\n"
            "    v = 'ran'\n"
            "    return v\n"
            "RESULT = f()\n"
            "reset_default_runtime()\n"
        )
        out_path = tmp_path / "app_c.py"
        assert main(["compile", str(src), "-o", str(out_path)]) == 0
        ns: dict = {"__name__": "compiled_app"}
        exec(compile(out_path.read_text(), str(out_path), "exec"), ns)
        assert ns["RESULT"] == "ran"

    def test_compile_missing_file(self, capsys):
        assert main(["compile", "/nonexistent/x.py"]) == 2

    def test_compile_bad_directive(self, tmp_path, capsys):
        src = tmp_path / "bad.py"
        src.write_text("#omp target nowait\nx = 1\n")
        assert main(["compile", str(src)]) == 2
        assert "compile error" in capsys.readouterr().err


class TestKernels:
    def test_kernels_table(self, capsys):
        assert main(["kernels", "--size", "A"]) == 0
        out = capsys.readouterr().out
        for name in ("crypt", "series", "montecarlo", "raytracer", "sor", "sparse"):
            assert name in out
        assert "True" in out
        assert "ext" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
