"""Tests for simulated pools, thread-per-request, and the EDT loop."""

import pytest

from repro.sim import (
    AwaitBlock,
    Machine,
    MachineConfig,
    Resource,
    SimEventLoop,
    SimThreadPool,
    Simulator,
    Store,
    ThreadCosts,
    spawn_thread,
)


def world(cores=4, overhead=0.0):
    sim = Simulator()
    return sim, Machine(sim, MachineConfig(cores=cores, switch_overhead=overhead))


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        s = Store(sim)
        s.put("x")
        ev = s.get()
        assert ev.fired and ev.value == "x"

    def test_get_then_put(self):
        sim = Simulator()
        s = Store(sim)
        ev = s.get()
        assert not ev.fired
        s.put("y")
        assert ev.value == "y"

    def test_fifo_ordering_items_and_getters(self):
        sim = Simulator()
        s = Store(sim)
        s.put(1)
        s.put(2)
        assert s.get().value == 1
        assert s.get().value == 2
        g1, g2 = s.get(), s.get()
        s.put("a")
        s.put("b")
        assert g1.value == "a" and g2.value == "b"

    def test_len_and_waiting(self):
        sim = Simulator()
        s = Store(sim)
        s.put(1)
        assert len(s) == 1
        s.get()
        s.get()
        assert s.waiting_getters == 1


class TestResource:
    def test_capacity_enforced(self):
        sim = Simulator()
        r = Resource(sim, 2)
        a, b, c = r.request(), r.request(), r.request()
        assert a.fired and b.fired and not c.fired
        assert r.in_use == 2 and r.queue_length == 1
        r.release()
        assert c.fired

    def test_release_idle_rejected(self):
        sim = Simulator()
        r = Resource(sim, 1)
        from repro.sim import SimulationError

        with pytest.raises(SimulationError):
            r.release()

    def test_zero_capacity_rejected(self):
        from repro.sim import SimulationError

        with pytest.raises(SimulationError):
            Resource(Simulator(), 0)


class TestThreadPool:
    def test_tasks_complete_with_results(self):
        sim, m = world()
        pool = SimThreadPool(sim, m, 2)

        def task():
            yield m.execute(0.5)
            return "done"

        ev = pool.submit(task)
        sim.run()
        assert ev.value == "done"
        assert pool.completed == 1

    def test_pool_limits_concurrency(self):
        sim, m = world(cores=8)
        pool = SimThreadPool(sim, m, 2, costs=ThreadCosts(queue_handoff=0.0))

        def task():
            yield m.execute(1.0)

        for _ in range(4):
            pool.submit(task)
        sim.run()
        # 2 at a time on an 8-core machine: 2 waves of 1s each.
        assert sim.now == pytest.approx(2.0, rel=1e-6)

    def test_task_error_fails_completion_event(self):
        sim, m = world()
        pool = SimThreadPool(sim, m, 1)

        def bad():
            yield m.execute(0.1)
            raise ValueError("task failed")

        ev = pool.submit(bad)
        sim.run()
        assert isinstance(ev.error, ValueError)

    def test_pool_survives_task_error(self):
        sim, m = world()
        pool = SimThreadPool(sim, m, 1)

        def bad():
            yield 0.1
            raise ValueError()

        def good():
            yield 0.1
            return "alive"

        pool.submit(bad)
        ev = pool.submit(good)
        sim.run()
        assert ev.value == "alive"

    def test_rejects_empty_pool(self):
        sim, m = world()
        with pytest.raises(ValueError):
            SimThreadPool(sim, m, 0)


class TestSpawnThread:
    def test_pays_spawn_cost(self):
        sim, m = world(cores=1)
        costs = ThreadCosts(thread_spawn=0.25)

        def task():
            yield m.execute(1.0)
            return "v"

        ev = spawn_thread(sim, m, task, costs=costs)
        sim.run()
        assert ev.value == "v"
        assert sim.now == pytest.approx(1.25)

    def test_error_propagates(self):
        sim, m = world()

        def bad():
            yield 0.1
            raise RuntimeError("spawned failure")

        ev = spawn_thread(sim, m, bad)
        sim.run()
        assert isinstance(ev.error, RuntimeError)


class TestEventLoop:
    def test_handlers_fifo_and_serialized(self):
        sim, m = world()
        edt = SimEventLoop(sim, m)
        order = []

        def handler(tag, dur):
            def gen():
                yield m.execute(dur)
                order.append((tag, round(sim.now, 6)))

            return gen

        edt.post(handler("a", 0.2))
        edt.post(handler("b", 0.1))
        sim.run()
        assert order == [("a", 0.2), ("b", 0.3)]
        assert edt.dispatched == 2

    def test_await_block_releases_loop(self):
        sim, m = world()
        edt = SimEventLoop(sim, m)
        pool = SimThreadPool(sim, m, 1)
        order = []

        def kernel():
            yield m.execute(0.5)
            return "K"

        def awaiting():
            got = yield AwaitBlock(pool.submit(kernel))
            order.append(("continuation", got, round(sim.now, 3)))

        def quick():
            yield m.execute(0.01)
            order.append(("quick", round(sim.now, 3)))

        h = edt.post(awaiting)
        sim.schedule(0.1, lambda: edt.post(quick))
        sim.run()
        assert [e[0] for e in order] == ["quick", "continuation"]
        assert h.fired

    def test_await_error_raises_in_handler(self):
        sim, m = world()
        edt = SimEventLoop(sim, m)
        pool = SimThreadPool(sim, m, 1)
        caught = []

        def bad_kernel():
            yield 0.1
            raise ValueError("block failed")

        def handler():
            try:
                yield AwaitBlock(pool.submit(bad_kernel))
            except ValueError:
                caught.append(True)

        edt.post(handler)
        sim.run()
        assert caught == [True]

    def test_handler_error_fails_completion(self):
        sim, m = world()
        edt = SimEventLoop(sim, m)

        def bad():
            yield 0.1
            raise KeyError("handler blew up")

        h = edt.post(bad)
        sim.run()
        assert isinstance(h.error, KeyError)
        # loop still alive
        ok = edt.post(lambda: iter([]))  # empty generator

        def fine():
            yield 0.0
            return 1

        h2 = edt.post(fine)
        sim.run()
        assert h2.value == 1

    def test_busy_time_excludes_await(self):
        sim, m = world()
        edt = SimEventLoop(sim, m)
        pool = SimThreadPool(sim, m, 1)

        def kernel():
            yield m.execute(1.0)

        def handler():
            yield m.execute(0.1)
            yield AwaitBlock(pool.submit(kernel))
            yield m.execute(0.1)

        edt.post(handler)
        sim.run()
        assert edt.busy_time == pytest.approx(0.2, abs=0.01)

    def test_nested_await_chain(self):
        sim, m = world()
        edt = SimEventLoop(sim, m)
        pool = SimThreadPool(sim, m, 2)
        order = []

        def work(tag, dur):
            def gen():
                yield m.execute(dur)
                order.append(tag)

            return gen

        def handler():
            yield AwaitBlock(pool.submit(work("first", 0.2)))
            yield AwaitBlock(pool.submit(work("second", 0.2)))
            order.append("done")

        edt.post(handler)
        sim.run()
        assert order == ["first", "second", "done"]
