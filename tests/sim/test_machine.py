"""Tests for the machine model: processor sharing + oversubscription."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Machine, MachineConfig, SimulationError, Simulator


def make(cores=4, overhead=0.0):
    sim = Simulator()
    return sim, Machine(sim, MachineConfig(cores=cores, switch_overhead=overhead))


class TestBasicTiming:
    def test_single_burst_takes_its_work(self):
        sim, m = make()
        m.execute(1.0)
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_bursts_up_to_core_count_run_fully_parallel(self):
        sim, m = make(cores=4)
        for _ in range(4):
            m.execute(1.0)
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_oversubscribed_shares_proportionally(self):
        sim, m = make(cores=2, overhead=0.0)
        for _ in range(4):
            m.execute(1.0)
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_zero_work_completes_immediately(self):
        sim, m = make()
        ev = m.execute(0.0)
        sim.run()
        assert ev.fired
        assert sim.now == 0.0

    def test_negative_work_rejected(self):
        _, m = make()
        with pytest.raises(SimulationError):
            m.execute(-0.1)

    def test_staggered_arrivals_exact(self):
        # Analytic: A runs alone 0.5s (rate 1), shares 0.5 rate for 1.0s more
        # -> done at 1.5; B then finishes its remaining 0.5 alone at 2.0.
        sim, m = make(cores=1)
        done = {}
        m.execute(1.0).on_fire(lambda e: done.__setitem__("a", sim.now))
        sim.schedule(0.5, lambda: m.execute(1.0).on_fire(
            lambda e: done.__setitem__("b", sim.now)))
        sim.run()
        assert done["a"] == pytest.approx(1.5)
        assert done["b"] == pytest.approx(2.0)


class TestOverheadModel:
    def test_no_penalty_at_or_below_cores(self):
        _, m = make(cores=4, overhead=0.5)
        assert m.efficiency(4) == 1.0
        assert m.efficiency(1) == 1.0

    def test_penalty_grows_with_oversubscription(self):
        _, m = make(cores=4, overhead=0.12)
        assert m.efficiency(5) < 1.0
        assert m.efficiency(16) < m.efficiency(5)

    def test_penalty_saturates(self):
        """A preemptive scheduler's overhead is bounded: deep oversubscription
        levels off (the Figure 9 plateau)."""
        _, m = make(cores=4, overhead=0.12)
        assert m.efficiency(4000) == pytest.approx(1.0 / 1.12, rel=1e-3)
        assert m.efficiency(400) > 1.0 / 1.13

    def test_oversubscribed_run_slower_than_ideal(self):
        sim, m = make(cores=2, overhead=0.2)
        for _ in range(8):
            m.execute(1.0)
        sim.run()
        assert sim.now > 4.0  # ideal PS would finish at 4.0

    def test_conservation_of_work(self):
        """Total busy core-seconds equals submitted work when not penalised."""
        sim, m = make(cores=4, overhead=0.0)
        works = [0.5, 1.0, 0.25, 2.0]
        for w in works:
            m.execute(w)
        sim.run()
        assert m.busy_core_seconds == pytest.approx(sum(works))

    @given(
        st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=12),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_completion_bounds_property(self, works, cores):
        """Makespan is at least max(work, total/cores) and at most
        total (single-core serial) times the max penalty factor."""
        sim = Simulator()
        m = Machine(sim, MachineConfig(cores=cores, switch_overhead=0.12))
        for w in works:
            m.execute(w)
        sim.run()
        lower = max(max(works), sum(works) / cores)
        upper = sum(works) * 1.12 + 1e-9
        assert lower - 1e-9 <= sim.now <= upper

    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_equal_bursts_finish_together(self, n):
        sim = Simulator()
        m = Machine(sim, MachineConfig(cores=4))
        finish_times = []
        for _ in range(n):
            m.execute(1.0).on_fire(lambda e: finish_times.append(sim.now))
        sim.run()
        assert len(set(finish_times)) == 1

    def test_active_count_tracks(self):
        sim, m = make()
        m.execute(1.0)
        m.execute(2.0)
        assert m.active == 2
        sim.run()
        assert m.active == 0
