"""Tests for the GUI-benchmark approach models (§V-A shapes)."""

import pytest

from repro.sim import APPROACHES, GUI_KERNELS, GuiBenchConfig, run_gui_benchmark


def run(approach, rate=20.0, kernel="crypt", n_events=60, **kw):
    return run_gui_benchmark(
        GuiBenchConfig(
            approach=approach,
            kernel=GUI_KERNELS[kernel],
            rate=rate,
            n_events=n_events,
            **kw,
        )
    )


class TestMechanics:
    @pytest.mark.parametrize("approach", APPROACHES)
    def test_every_approach_completes_all_events(self, approach):
        result = run(approach, rate=10.0, n_events=30)
        assert result.response.count == 30
        assert result.dispatch.count == 30

    def test_deterministic(self):
        a = run("pyjama_async", rate=40.0)
        b = run("pyjama_async", rate=40.0)
        assert a.response.samples == b.response.samples

    def test_unknown_approach_rejected(self):
        with pytest.raises(ValueError):
            GuiBenchConfig(approach="magic")

    def test_lost_event_detection(self):
        # internal guard: every event must finish
        result = run("sequential", rate=5.0, n_events=10)
        assert result.response.count == 10


class TestPaperShapes:
    """Qualitative claims of §V-A, as assertions."""

    def test_sequential_blows_up_past_saturation(self):
        """Crypt = 40 ms ⇒ a lone EDT saturates at 25 req/s; open-loop load
        beyond that makes the queue (and response time) explode."""
        below = run("sequential", rate=15.0).response.mean
        above = run("sequential", rate=50.0, n_events=150).response.mean
        assert below < 0.06
        assert above > 10 * below

    @pytest.mark.parametrize("approach", ["swingworker", "executor", "pyjama_async"])
    def test_offloading_stays_flat_past_edt_saturation(self, approach):
        below = run(approach, rate=15.0).response.mean
        above = run(approach, rate=50.0, n_events=150).response.mean
        assert above < 3 * below

    def test_pyjama_comparable_to_manual_approaches(self):
        """'Performance achieved by the proposed directive based approach is
        equal and often superior to manual implementations.'"""
        for rate in (20.0, 50.0, 80.0):
            pyjama = run("pyjama_async", rate=rate, n_events=100).response.mean
            executor = run("executor", rate=rate, n_events=100).response.mean
            swing = run("swingworker", rate=rate, n_events=100).response.mean
            assert pyjama <= executor * 1.10
            assert pyjama <= swing * 1.10

    def test_sync_parallel_keeps_edt_busy(self):
        """'the EDT in the synchronous parallel approach is actually
        unresponsive for a longer time compared to other approaches'."""
        sync = run("sync_parallel", rate=20.0)
        pyjama = run("pyjama_async", rate=20.0)
        assert sync.edt_busy_fraction > 5 * pyjama.edt_busy_fraction
        assert sync.edt_busy_fraction > 0.15

    def test_sync_parallel_dispatch_collapses_before_async(self):
        rate = 90.0
        sync = run("sync_parallel", rate=rate, n_events=150)
        pyjama = run("pyjama_async", rate=rate, n_events=150)
        assert pyjama.dispatch.mean < sync.dispatch.mean

    def test_async_parallel_beats_async_on_latency_at_low_load(self):
        """Per-event parallelization shortens each response when cores are
        idle (Figure 8's low-load region)."""
        async_seq = run("pyjama_async", rate=10.0).response.mean
        async_par = run("async_parallel", rate=10.0).response.mean
        assert async_par < async_seq

    def test_async_parallel_advantage_shrinks_at_saturation(self):
        """Once the machine saturates, per-event parallelism cannot add
        throughput (Figure 8's high-load region)."""
        lo_seq = run("pyjama_async", rate=10.0).response.mean
        lo_par = run("async_parallel", rate=10.0).response.mean
        hi_seq = run("pyjama_async", rate=95.0, n_events=150).response.mean
        hi_par = run("async_parallel", rate=95.0, n_events=150).response.mean
        gain_lo = lo_seq / lo_par
        gain_hi = hi_seq / hi_par
        assert gain_hi < gain_lo

    def test_thread_per_request_worst_under_heavy_load(self):
        """§II-A: unbounded thread creation collapses under load."""
        tpr = run("thread_per_request", rate=95.0, n_events=150).response.mean
        pooled = run("executor", rate=95.0, n_events=150).response.mean
        assert tpr > pooled

    def test_dispatch_latency_near_zero_for_offloading(self):
        r = run("pyjama_async", rate=50.0, n_events=100)
        assert r.dispatch.mean < 0.005

    @pytest.mark.parametrize("kernel", sorted(GUI_KERNELS))
    def test_shapes_hold_for_every_paper_kernel(self, kernel):
        """The §V-A result is per-kernel: sequential degrades, Pyjama stays
        flat, for all four Java Grande kernels."""
        serial = GUI_KERNELS[kernel].serial_time
        saturation = 1.0 / serial
        hi = min(100.0, saturation * 2)
        seq = run("sequential", kernel=kernel, rate=hi, n_events=100).response.mean
        pyj = run("pyjama_async", kernel=kernel, rate=hi, n_events=100).response.mean
        assert pyj < seq
