"""Tests for execution tracing and ASCII timelines."""

import pytest

from repro.sim import (
    AwaitBlock,
    Machine,
    MachineConfig,
    SimEventLoop,
    SimThreadPool,
    Simulator,
    Span,
    TraceRecorder,
    render_ascii,
)


class TestRecorder:
    def test_record_and_lanes_in_first_seen_order(self):
        r = TraceRecorder()
        r.record("edt", "a", 0.0, 1.0)
        r.record("w-0", "b", 0.5, 2.0)
        r.record("edt", "c", 2.0, 3.0)
        assert r.lanes() == ["edt", "w-0"]
        assert r.horizon == 3.0

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            Span("l", "x", 2.0, 1.0)

    def test_busy_time_merges_overlaps(self):
        r = TraceRecorder()
        r.record("l", "a", 0.0, 2.0)
        r.record("l", "b", 1.0, 3.0)   # overlapping
        r.record("l", "c", 5.0, 6.0)
        assert r.lane_busy_time("l") == pytest.approx(4.0)

    def test_busy_time_empty_lane(self):
        assert TraceRecorder().lane_busy_time("ghost") == 0.0


class TestRender:
    def test_empty(self):
        assert render_ascii(TraceRecorder()) == "(empty trace)"

    def test_rows_and_fill(self):
        r = TraceRecorder()
        r.record("edt", "h", 0.0, 0.5)
        r.record("pool-0", "t", 0.5, 1.0)
        out = render_ascii(r, width=20)
        lines = out.splitlines()
        assert lines[0].startswith("   edt |")
        assert lines[1].startswith("pool-0 |")
        # busy halves are on opposite sides
        edt_cells = lines[0].split("|")[1]
        pool_cells = lines[1].split("|")[1]
        assert edt_cells[:8].count("█") > 0 and edt_cells[-5:].count("█") == 0
        assert pool_cells[-8:].count("█") > 0 and pool_cells[:5].count("█") == 0

    def test_width_validation(self):
        r = TraceRecorder()
        r.record("l", "x", 0, 1)
        with pytest.raises(ValueError):
            render_ascii(r, width=5)

    def test_deterministic(self):
        r = TraceRecorder()
        r.record("a", "x", 0.0, 0.25)
        r.record("b", "y", 0.25, 1.0)
        assert render_ascii(r, width=32) == render_ascii(r, width=32)


class TestIntegrationWithSim:
    def test_traced_await_shows_edt_gap(self):
        """The paper's Figure-1 picture from a real run: during the awaited
        block the EDT lane is idle while the pool lane is busy."""
        sim = Simulator()
        machine = Machine(sim, MachineConfig(cores=4))
        trace = TraceRecorder()
        edt = SimEventLoop(sim, machine, trace=trace)
        pool = SimThreadPool(sim, machine, 1, name="w", trace=trace)

        def kernel():
            yield machine.execute(0.4)

        def handler():
            yield machine.execute(0.05)
            yield AwaitBlock(pool.submit(kernel))
            yield machine.execute(0.05)

        edt.post(handler)
        sim.run()

        edt_busy = trace.lane_busy_time("edt")
        pool_busy = trace.lane_busy_time("w-0")
        assert edt_busy == pytest.approx(0.1, abs=0.01)
        assert pool_busy == pytest.approx(0.4, abs=0.01)
        # The rendered timeline shows the idle gap on the EDT lane.
        art = render_ascii(trace, width=50)
        edt_line = next(l for l in art.splitlines() if l.strip().startswith("edt"))
        cells = edt_line.split("|")[1]
        middle = cells[len(cells) // 3 : 2 * len(cells) // 3]
        assert "·" in middle

    def test_pool_tasks_traced(self):
        sim = Simulator()
        machine = Machine(sim, MachineConfig(cores=2))
        trace = TraceRecorder()
        pool = SimThreadPool(sim, machine, 2, name="p", trace=trace)

        def t():
            yield machine.execute(0.1)

        for _ in range(4):
            pool.submit(t)
        sim.run()
        assert len(trace.spans) == 4
        assert {s.lane for s in trace.spans} == {"p-0", "p-1"}
