"""Analytic validation: the simulator against closed-form queueing results.

The machine and queue models are simple enough that several scenarios have
exact answers; these tests pin the simulator to them, so shape claims in the
benchmarks rest on verified mechanics rather than plausible-looking curves.
"""

import pytest

from repro.sim import (
    GUI_KERNELS,
    GuiBenchConfig,
    KernelCostModel,
    Machine,
    MachineConfig,
    Simulator,
    run_gui_benchmark,
)


class TestWorkConservation:
    def test_machine_busy_time_equals_submitted_work(self):
        sim = Simulator()
        m = Machine(sim, MachineConfig(cores=4, switch_overhead=0.0))
        works = [0.1, 0.35, 0.2, 0.8, 0.05]
        for w in works:
            m.execute(w)
        sim.run()
        assert m.busy_core_seconds == pytest.approx(sum(works))

    def test_gui_benchmark_response_below_saturation_is_exact(self):
        """Deterministic arrivals slower than the service time: zero
        queueing, so mean response = handler span exactly."""
        kernel = KernelCostModel("exact", serial_time=0.050, parallel_fraction=0.9)
        cfg = GuiBenchConfig(
            approach="sequential", kernel=kernel, rate=10.0, n_events=50
        )
        result = run_gui_benchmark(cfg)
        expected = 0.050 + 2 * cfg.gui_update  # kernel + pre/post updates
        assert result.response.mean == pytest.approx(expected, rel=1e-6)
        assert result.response.maximum == pytest.approx(expected, rel=1e-6)

    def test_sequential_saturated_growth_is_linear(self):
        """Past saturation with deterministic arrivals, the backlog grows
        linearly: event k waits ~k*(service - gap), so the mean response of
        n events is ~n/2*(service - gap) + service."""
        kernel = KernelCostModel("lin", serial_time=0.040, parallel_fraction=0.9)
        rate = 50.0  # gap 20 ms < 41 ms service
        n = 100
        cfg = GuiBenchConfig(
            approach="sequential", kernel=kernel, rate=rate, n_events=n
        )
        service = 0.040 + 2 * cfg.gui_update
        gap = 1.0 / rate
        result = run_gui_benchmark(cfg)
        predicted_mean = (n - 1) / 2 * (service - gap) + service
        assert result.response.mean == pytest.approx(predicted_mean, rel=0.02)

    def test_pool_throughput_equals_little_law(self):
        """Closed-form pool check: k workers × service time bounds the
        completion horizon of n jobs exactly for deterministic service."""
        from repro.sim import SimThreadPool, ThreadCosts

        sim = Simulator()
        m = Machine(sim, MachineConfig(cores=8, switch_overhead=0.0))
        pool = SimThreadPool(sim, m, 2, costs=ThreadCosts(queue_handoff=0.0))

        def job():
            yield m.execute(0.5)

        for _ in range(6):
            pool.submit(job)
        sim.run()
        # 6 jobs / 2 workers * 0.5 s = 1.5 s.
        assert sim.now == pytest.approx(1.5, rel=1e-9)

    def test_amdahl_span_realised_on_idle_machine(self):
        """The async-parallel handler's latency equals the kernel's Amdahl
        span plus fixed costs when the machine is otherwise idle."""
        kernel = GUI_KERNELS["raytracer"]
        cfg = GuiBenchConfig(
            approach="async_parallel", kernel=kernel, rate=1.0, n_events=5,
            parallel_threads=3,
        )
        result = run_gui_benchmark(cfg)
        span = kernel.span(3)
        fixed = 2 * cfg.gui_update + cfg.costs.queue_handoff * 2 + 50e-6
        assert result.response.mean == pytest.approx(span + fixed, rel=0.05)
