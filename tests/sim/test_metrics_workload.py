"""Tests for metrics and workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    ResponseStats,
    Series,
    SimEvent,
    Simulator,
    ThroughputMeter,
    fire_open_loop,
    run_closed_loop_users,
)


class TestResponseStats:
    def test_mean_and_percentiles(self):
        s = ResponseStats()
        for i, rt in enumerate([0.1, 0.2, 0.3, 0.4]):
            s.record(float(i), i + rt)
        assert s.count == 4
        assert s.mean == pytest.approx(0.25)
        assert s.median == pytest.approx(0.25)
        assert s.maximum == pytest.approx(0.4)
        assert s.percentile(0) == pytest.approx(0.1)
        assert s.percentile(100) == pytest.approx(0.4)

    def test_empty_stats_raise(self):
        s = ResponseStats()
        with pytest.raises(ValueError):
            s.mean
        with pytest.raises(ValueError):
            s.percentile(50)

    def test_negative_response_rejected(self):
        s = ResponseStats()
        with pytest.raises(ValueError):
            s.record(2.0, 1.0)

    def test_bad_percentile(self):
        s = ResponseStats()
        s.record(0.0, 1.0)
        with pytest.raises(ValueError):
            s.percentile(101)

    def test_window_tracking(self):
        s = ResponseStats()
        s.record(1.0, 2.0)
        s.record(0.5, 3.0)
        assert s.first_fired == 0.5
        assert s.last_finished == 3.0

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_percentile_monotone_property(self, rts):
        s = ResponseStats()
        for i, rt in enumerate(rts):
            s.record(float(i), i + rt)
        values = [s.percentile(p) for p in (0, 25, 50, 75, 100)]
        assert values == sorted(values)
        assert min(rts) - 1e-9 <= s.mean <= max(rts) + 1e-9


class TestThroughputMeter:
    def test_throughput(self):
        m = ThroughputMeter()
        m.mark_start(0.0)
        for t in (1.0, 2.0, 4.0):
            m.mark_completion(t)
        assert m.completed == 3
        assert m.throughput == pytest.approx(3 / 4.0)

    def test_no_samples_zero(self):
        assert ThroughputMeter().throughput == 0.0


class TestSeries:
    def test_add_and_rows(self):
        s = Series("pyjama")
        s.add(10, 0.04)
        s.add(20, 0.05)
        assert s.as_rows() == [(10, 0.04), (20, 0.05)]


class TestOpenLoop:
    def test_uniform_spacing(self):
        sim = Simulator()
        fired = []
        times = fire_open_loop(sim, rate=10.0, count=5, fire=lambda i: fired.append((i, sim.now)))
        sim.run()
        assert times == [0.0, 0.1, 0.2, 0.3, 0.4]
        assert fired == [(0, 0.0), (1, 0.1), (2, 0.2), (3, 0.3), (4, 0.4)]

    def test_poisson_reproducible(self):
        t1 = fire_open_loop(Simulator(), 10.0, 20, lambda i: None, poisson=True, seed=7)
        t2 = fire_open_loop(Simulator(), 10.0, 20, lambda i: None, poisson=True, seed=7)
        t3 = fire_open_loop(Simulator(), 10.0, 20, lambda i: None, poisson=True, seed=8)
        assert t1 == t2
        assert t1 != t3

    def test_poisson_rate_roughly_matches(self):
        times = fire_open_loop(Simulator(), 50.0, 2000, lambda i: None, poisson=True, seed=1)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1 / 50.0, rel=0.15)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            fire_open_loop(Simulator(), 0.0, 1, lambda i: None)


class TestClosedLoop:
    def test_users_wait_for_responses(self):
        sim = Simulator()
        in_flight = {"n": 0, "max": 0}
        log = []

        def send(uid, seq):
            in_flight["n"] += 1
            in_flight["max"] = max(in_flight["max"], in_flight["n"])
            ev = SimEvent(sim)

            def respond():
                in_flight["n"] -= 1
                log.append((uid, seq))
                ev.succeed()

            sim.schedule(1.0, respond)
            return ev

        run_closed_loop_users(sim, n_users=3, requests_per_user=2, send_request=send)
        sim.run()
        assert len(log) == 6
        # closed loop: never more outstanding requests than users
        assert in_flight["max"] <= 3
        # each user's requests are sequential
        for uid in range(3):
            seqs = [s for u, s in log if u == uid]
            assert seqs == [0, 1]

    def test_on_response_callback(self):
        sim = Simulator()
        responses = []

        def send(uid, seq):
            ev = SimEvent(sim)
            sim.schedule(0.5, ev.succeed)
            return ev

        run_closed_loop_users(
            sim, 2, 1, send, on_response=lambda u, s, t: responses.append((u, s, t))
        )
        sim.run()
        assert sorted(responses) == [(0, 0, 0.5), (1, 0, 0.5)]

    def test_ramp_up_staggers_starts(self):
        sim = Simulator()
        starts = []

        def send(uid, seq):
            starts.append((uid, sim.now))
            ev = SimEvent(sim)
            sim.schedule(0.01, ev.succeed)
            return ev

        run_closed_loop_users(sim, 4, 1, send, ramp_up=1.0)
        sim.run()
        times = [t for _, t in sorted(starts)]
        assert times == [0.0, 0.25, 0.5, 0.75]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_closed_loop_users(Simulator(), 0, 1, lambda u, s: None)
