"""Tests for the DES core: clock, events, processes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_fifo(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        hits = []
        h = sim.schedule(1.0, lambda: hits.append(1))
        sim.cancel(h)
        sim.run()
        assert hits == []

    def test_run_until(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(5.0, lambda: hits.append(5))
        sim.run(until=2.0)
        assert hits == [1]
        assert sim.now == 2.0
        sim.run()
        assert hits == [1, 5]

    def test_runaway_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_clock_monotone_property(self, delays):
        """The clock never moves backwards, whatever the schedule."""
        sim = Simulator()
        observed = []
        for d in delays:
            sim.schedule(d, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)


class TestEvents:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        ev = sim.event("e")
        got = []
        ev.on_fire(lambda e: got.append(e.value))
        ev.succeed(42)
        assert got == [42]
        assert ev.fired
        assert ev.fired_at == 0.0

    def test_double_fire_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_value_before_fire_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.event().value

    def test_fail_reraises_on_value(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError):
            ev.value

    def test_late_callback_runs_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("v")
        got = []
        ev.on_fire(lambda e: got.append(e.value))
        assert got == ["v"]

    def test_timeout(self):
        sim = Simulator()
        ev = sim.timeout(2.5, value="late")
        sim.run()
        assert ev.fired_at == 2.5
        assert ev.value == "late"

    def test_all_of(self):
        sim = Simulator()
        evs = [sim.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]
        combined = AllOf(sim, evs)
        sim.run()
        assert combined.fired_at == 3.0
        assert combined.value == [3.0, 1.0, 2.0]

    def test_all_of_empty(self):
        sim = Simulator()
        combined = AllOf(sim, [])
        assert combined.fired
        assert combined.value == []

    def test_all_of_propagates_failure(self):
        sim = Simulator()
        good = sim.timeout(1.0)
        bad = sim.event()
        combined = AllOf(sim, [good, bad])
        bad.fail(RuntimeError("x"))
        sim.run()
        assert combined.error is not None


class TestProcesses:
    def test_delay_yield(self):
        sim = Simulator()

        def proc():
            yield 1.5
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.done.value == 1.5

    def test_event_yield_receives_value(self):
        sim = Simulator()

        def proc():
            v = yield sim.timeout(1.0, value="payload")
            return v

        p = sim.process(proc())
        sim.run()
        assert p.done.value == "payload"

    def test_process_yield_waits_completion(self):
        sim = Simulator()

        def inner():
            yield 2.0
            return "inner-result"

        def outer():
            result = yield sim.process(inner())
            return (result, sim.now)

        p = sim.process(outer())
        sim.run()
        assert p.done.value == ("inner-result", 2.0)

    def test_exception_fails_done_event(self):
        sim = Simulator()

        def proc():
            yield 1.0
            raise ValueError("inside")

        p = sim.process(proc())
        sim.run()
        assert isinstance(p.done.error, ValueError)

    def test_failed_dependency_raises_into_waiter(self):
        sim = Simulator()

        def failing():
            yield 1.0
            raise KeyError("dep")

        def waiter():
            try:
                yield sim.process(failing())
            except KeyError:
                return "caught"
            return "not caught"

        p = sim.process(waiter())
        sim.run()
        assert p.done.value == "caught"

    def test_negative_sleep_rejected(self):
        sim = Simulator()

        def proc():
            yield -1.0

        p = sim.process(proc())
        sim.run()
        assert isinstance(p.done.error, SimulationError)

    def test_bad_yield_type(self):
        sim = Simulator()

        def proc():
            yield "not-a-command"

        p = sim.process(proc())
        sim.run()
        assert isinstance(p.done.error, SimulationError)

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def proc(name, step):
            for i in range(3):
                yield step
                log.append((name, sim.now))

        sim.process(proc("a", 1.0))
        sim.process(proc("b", 1.5))
        sim.run()
        assert [t for _, t in log] == sorted(t for _, t in log)
        assert [e for e in log if e[0] == "a"] == [("a", 1.0), ("a", 2.0), ("a", 3.0)]
        assert [e for e in log if e[0] == "b"] == [("b", 1.5), ("b", 3.0), ("b", 4.5)]
