"""Tests for the HTTP service simulation (§V-B / Figure 9 shapes)."""

import pytest

from repro.sim import HttpBenchConfig, run_http_benchmark


def run(server="pyjama", workers=8, parallel=None, **kw):
    kw.setdefault("n_users", 50)
    kw.setdefault("requests_per_user", 3)
    return run_http_benchmark(
        HttpBenchConfig(
            server=server, worker_threads=workers, parallel_threads=parallel, **kw
        )
    )


class TestMechanics:
    def test_all_requests_complete(self):
        r = run(workers=4)
        assert r.completed == 150

    def test_deterministic(self):
        assert run().throughput == run().throughput

    def test_validation(self):
        with pytest.raises(ValueError):
            HttpBenchConfig(server="apache")
        with pytest.raises(ValueError):
            HttpBenchConfig(worker_threads=0)
        with pytest.raises(ValueError):
            HttpBenchConfig(parallel_threads=0)

    def test_parallel_raises_active_thread_count(self):
        plain = run(workers=8)
        par = run(workers=8, parallel=8)
        assert par.mean_active_threads > plain.mean_active_threads


class TestPaperShapes:
    """Figure 9's qualitative claims."""

    def test_jetty_and_pyjama_comparable(self):
        """'both Jetty and Pyjama have good scaling performance'."""
        for w in (2, 8, 16):
            jetty = run("jetty", workers=w).throughput
            pyjama = run("pyjama", workers=w).throughput
            assert pyjama == pytest.approx(jetty, rel=0.05)

    def test_plain_variants_scale_with_workers(self):
        t2 = run(workers=2).throughput
        t8 = run(workers=8).throughput
        t16 = run(workers=16).throughput
        assert t8 > 3 * t2
        assert t16 > 1.5 * t8

    def test_parallel_dramatically_better_at_low_workers(self):
        """'it initially results in dramatically better throughput'."""
        plain = run(workers=2).throughput
        par = run(workers=2, parallel=8).throughput
        assert par > 3 * plain

    def test_parallel_levels_off_under_50(self):
        """'the throughput levels off at just under 50 responses/sec'."""
        values = [run(workers=w, parallel=8).throughput for w in (8, 16, 32)]
        assert all(30 < v < 50 for v in values), values
        spread = max(values) - min(values)
        assert spread < 0.2 * max(values)  # a plateau, not a slope

    def test_plain_peak_near_capacity(self):
        """16 cores / 0.32 s/request ≈ 50 responses/sec ceiling."""
        peak = run(workers=16).throughput
        assert 40 < peak <= 50

    def test_crossover_parallel_wins_low_loses_high(self):
        """Parallel wins with few workers; plain catches up at high worker
        counts (the Figure 9 crossover)."""
        low_plain = run(workers=2).throughput
        low_par = run(workers=2, parallel=8).throughput
        hi_plain = run(workers=16).throughput
        hi_par = run(workers=16, parallel=8).throughput
        assert low_par > low_plain
        assert hi_plain >= hi_par

    def test_oversubscription_penalty_visible(self):
        """Turning the scheduler overhead off lifts the parallel plateau —
        the plateau is caused by the modeled thread-scheduling overhead."""
        with_penalty = run(workers=16, parallel=8).throughput
        without = run(workers=16, parallel=8, switch_overhead=0.0).throughput
        assert without > with_penalty
