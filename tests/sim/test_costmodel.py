"""Tests for kernel cost models."""

import pytest

from repro.sim import (
    FORK_JOIN_OVERHEAD,
    GUI_KERNELS,
    KernelCostModel,
    Machine,
    MachineConfig,
    Simulator,
    kernel_task,
    parallel_kernel_task,
)


class TestKernelCostModel:
    def test_paper_kernel_set(self):
        assert set(GUI_KERNELS) == {"crypt", "series", "montecarlo", "raytracer"}

    def test_magnitudes_are_subsecond(self):
        # "computations lasting only a few hundred milliseconds"
        for model in GUI_KERNELS.values():
            assert 0.001 <= model.serial_time <= 0.5

    def test_span_single_thread_is_serial(self):
        m = KernelCostModel("k", 0.1, 0.9)
        assert m.span(1) == 0.1

    def test_span_obeys_amdahl(self):
        m = KernelCostModel("k", 0.1, 0.9)
        expected = 0.1 * 0.1 + 0.1 * 0.9 / 4 + FORK_JOIN_OVERHEAD
        assert m.span(4) == pytest.approx(expected)

    def test_speedup_bounded_by_amdahl(self):
        m = KernelCostModel("k", 0.1, 0.9)
        limit = 1 / (1 - 0.9)
        assert m.speedup(1000) < limit
        assert 1.0 < m.speedup(4) < limit

    def test_span_monotone_decreasing_until_overhead(self):
        m = GUI_KERNELS["raytracer"]
        assert m.span(2) < m.span(1)
        assert m.span(4) < m.span(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelCostModel("k", 0.0, 0.5)
        with pytest.raises(ValueError):
            KernelCostModel("k", 0.1, 1.5)
        with pytest.raises(ValueError):
            KernelCostModel("k", 0.1, 0.5).span(0)


class TestTasks:
    def test_sequential_task_timing(self):
        sim = Simulator()
        machine = Machine(sim, MachineConfig(cores=4))
        task = kernel_task(machine, KernelCostModel("k", 0.25, 0.9))
        sim.process(task())
        sim.run()
        assert sim.now == pytest.approx(0.25)

    def test_parallel_task_faster_on_idle_machine(self):
        model = KernelCostModel("k", 0.4, 0.95)
        times = {}
        for threads in (1, 4):
            sim = Simulator()
            machine = Machine(sim, MachineConfig(cores=4))
            sim.process(parallel_kernel_task(sim, machine, model, threads)())
            sim.run()
            times[threads] = sim.now
        assert times[4] < times[1]
        assert times[4] == pytest.approx(model.span(4), rel=0.01)

    def test_parallel_task_contends_for_cores(self):
        # 8 chunks on 4 cores cannot beat total-work/cores.
        model = KernelCostModel("k", 0.4, 1.0)
        sim = Simulator()
        machine = Machine(sim, MachineConfig(cores=4, switch_overhead=0.0))
        sim.process(parallel_kernel_task(sim, machine, model, 8)())
        sim.run()
        assert sim.now >= 0.4 / 4

    def test_per_thread_spawn_cost(self):
        model = KernelCostModel("k", 0.1, 0.5)
        sim = Simulator()
        machine = Machine(sim, MachineConfig(cores=16))
        sim.process(
            parallel_kernel_task(sim, machine, model, 4, per_thread_spawn=0.01)()
        )
        sim.run()
        base = model.span(4)
        assert sim.now == pytest.approx(base + 0.04, rel=0.01)

    def test_invalid_threads(self):
        sim = Simulator()
        machine = Machine(sim, MachineConfig())
        with pytest.raises(ValueError):
            parallel_kernel_task(sim, machine, GUI_KERNELS["crypt"], 0)


class TestCalibration:
    def test_calibrate_from_host_preserves_structure(self):
        from repro.sim import calibrate_from_host

        models = calibrate_from_host("A")
        assert set(models) == set(GUI_KERNELS)
        for name, model in models.items():
            assert model.serial_time > 0
            assert model.parallel_fraction == GUI_KERNELS[name].parallel_fraction
