"""Tests for the two await semantics in the simulator, and AnyOf/cancel_get.

The 'pumping' style models Algorithm 1 verbatim (nested message loops,
LIFO continuation unwinding — matching the measured real-thread behaviour);
'continuation' models the idealised semantics the figures assume.
"""

import pytest

from repro.sim import (
    AnyOf,
    AwaitBlock,
    GuiBenchConfig,
    GUI_KERNELS,
    Machine,
    MachineConfig,
    SimEventLoop,
    SimThreadPool,
    SimulationError,
    Simulator,
    Store,
    run_gui_benchmark,
)


class TestAnyOf:
    def test_first_wins(self):
        sim = Simulator()
        slow = sim.timeout(2.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        combined = AnyOf(sim, [slow, fast])
        sim.run()
        assert combined.fired_at == 1.0
        assert combined.value is fast

    def test_already_fired_input(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("x")
        combined = AnyOf(sim, [ev, sim.timeout(5.0)])
        assert combined.fired
        assert combined.value is ev

    def test_failure_propagates(self):
        sim = Simulator()
        bad = sim.event()
        combined = AnyOf(sim, [bad, sim.timeout(5.0)])
        bad.fail(RuntimeError("x"))
        assert combined.error is not None

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            AnyOf(Simulator(), [])

    def test_later_firings_ignored(self):
        sim = Simulator()
        a, b = sim.timeout(1.0, value="a"), sim.timeout(2.0, value="b")
        combined = AnyOf(sim, [a, b])
        sim.run()
        assert combined.value is a  # b firing later did not re-fire combined


class TestCancelGet:
    def test_cancelled_getter_does_not_steal(self):
        sim = Simulator()
        s = Store(sim)
        g1 = s.get()
        assert s.cancel_get(g1)
        g2 = s.get()
        s.put("item")
        assert not g1.fired
        assert g2.value == "item"

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        s = Store(sim)
        s.put(1)
        g = s.get()
        assert not s.cancel_get(g)


def nested_await_scenario(style):
    sim = Simulator()
    machine = Machine(sim, MachineConfig(cores=8))
    edt = SimEventLoop(sim, machine, await_style=style)
    pool = SimThreadPool(sim, machine, 4)
    continued = []

    def mk(i):
        def kernel():
            yield machine.execute(0.04 + 0.04 * i)

        def handler():
            yield AwaitBlock(pool.submit(kernel))
            continued.append((i, round(sim.now, 4)))

        return handler

    for i in range(3):
        edt.post(mk(i))
    sim.run()
    return continued, edt


class TestAwaitStyles:
    def test_continuation_is_fifo(self):
        continued, edt = nested_await_scenario("continuation")
        assert [i for i, _ in continued] == [0, 1, 2]
        assert edt.max_pump_depth == 0

    def test_pumping_is_lifo(self):
        """The simulator reproduces the real runtime's nesting finding."""
        continued, edt = nested_await_scenario("pumping")
        assert [i for i, _ in continued] == [2, 1, 0]
        assert edt.max_pump_depth == 3

    def test_pumping_continuations_delayed_to_unwind(self):
        cont_c, _ = nested_await_scenario("continuation")
        cont_p, _ = nested_await_scenario("pumping")
        t_first_c = min(t for _, t in cont_c)
        t_first_p = min(t for _, t in cont_p)
        # Under pumping the earliest continuation (event 2's) still fires at
        # its block's completion; event 0's is delayed until full unwind.
        by_event_c = dict(cont_c)
        by_event_p = dict(cont_p)
        assert by_event_p[0] >= by_event_c[0]
        assert by_event_p[2] == pytest.approx(by_event_c[2], abs=0.01)

    def test_invalid_style_rejected(self):
        sim = Simulator()
        machine = Machine(sim, MachineConfig())
        with pytest.raises(ValueError):
            SimEventLoop(sim, machine, await_style="psychic")

    def test_pumping_block_error_reaches_handler(self):
        sim = Simulator()
        machine = Machine(sim, MachineConfig())
        edt = SimEventLoop(sim, machine, await_style="pumping")
        pool = SimThreadPool(sim, machine, 1)
        caught = []

        def bad():
            yield 0.05
            raise ValueError("block boom")

        def handler():
            try:
                yield AwaitBlock(pool.submit(bad))
            except ValueError:
                caught.append(True)

        edt.post(handler)
        sim.run()
        assert caught == [True]

    def test_pumping_lone_await_equivalent_to_continuation(self):
        """Without overlapping awaits the two styles give identical times."""
        def run(style):
            return run_gui_benchmark(
                GuiBenchConfig(
                    approach="pyjama_async",
                    kernel=GUI_KERNELS["crypt"],
                    rate=5.0,            # far below saturation: no overlap
                    n_events=20,
                    await_style=style,
                )
            ).response.mean

        assert run("pumping") == pytest.approx(run("continuation"), rel=1e-6)

    def test_pumping_inflates_response_under_load(self):
        """With overlapping awaits, pumping inflates the *measured* response
        times (continuations wait for the unwind) even though offloaded work
        is unaffected — quantifying the finding."""
        def run(style):
            return run_gui_benchmark(
                GuiBenchConfig(
                    approach="pyjama_async",
                    kernel=GUI_KERNELS["crypt"],
                    rate=60.0,
                    n_events=120,
                    await_style=style,
                )
            ).response.mean

        assert run("pumping") > 1.5 * run("continuation")
