"""Public-API integrity: every exported name exists, imports, and is owned.

Catches the classic refactoring failure where ``__all__`` drifts from the
module contents — cheap insurance for a library this size.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.compiler",
    "repro.openmp",
    "repro.eventloop",
    "repro.kernels",
    "repro.sim",
    "repro.adapters",
    "repro.dist",
]


@pytest.mark.parametrize("modname", PACKAGES)
class TestAllIntegrity:
    def test_every_all_name_resolves(self, modname):
        mod = importlib.import_module(modname)
        missing = [n for n in getattr(mod, "__all__", []) if not hasattr(mod, n)]
        assert not missing, f"{modname}.__all__ lists missing names: {missing}"

    def test_all_has_no_duplicates(self, modname):
        mod = importlib.import_module(modname)
        names = list(getattr(mod, "__all__", []))
        assert len(names) == len(set(names))

    def test_package_has_docstring(self, modname):
        mod = importlib.import_module(modname)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 40


class TestDocstringCoverage:
    @pytest.mark.parametrize("modname", PACKAGES[1:])
    def test_public_callables_documented(self, modname):
        mod = importlib.import_module(modname)
        undocumented = []
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"{modname}: undocumented public items: {undocumented}"


class TestEntryPoints:
    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_cli_importable_without_side_effects(self):
        from repro.cli import build_parser

        parser = build_parser()
        subcommands = {"fig1", "fig7", "fig8", "fig9", "timeline", "kernels", "compile"}
        text = parser.format_help()
        for sub in subcommands:
            assert sub in text

    def test_bridge_surface_matches_generated_calls(self):
        """Every bridge function the transformer can emit must exist."""
        import repro.compiler.bridge as bridge

        emitted = {
            "run_on", "wait_for", "parallel", "for_loop", "sections",
            "single", "master", "ordered", "critical", "barrier", "task",
            "taskwait", "flush", "identity_for", "omp_get_thread_num",
            "collapse_product",
        }
        missing = [f for f in emitted if not hasattr(bridge, f)]
        assert not missing, f"bridge lacks: {missing}"
        assert hasattr(bridge, "REDUCTIONS")
