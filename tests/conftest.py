"""Shared fixtures: isolated runtimes so tests never leak threads or targets."""

from __future__ import annotations

import pytest

from repro.core import PjRuntime


@pytest.fixture()
def rt():
    """A private runtime, shut down after the test."""
    runtime = PjRuntime()
    yield runtime
    runtime.shutdown(wait=False)


@pytest.fixture()
def worker_rt(rt):
    """Runtime with a 2-thread worker target named 'worker'."""
    rt.create_worker("worker", 2)
    return rt


@pytest.fixture()
def edt_rt(rt):
    """Runtime with a spawned EDT named 'edt' and a worker named 'worker'."""
    rt.start_edt("edt")
    rt.create_worker("worker", 2)
    return rt
