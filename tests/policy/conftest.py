"""Trace-session isolation for the policy suite (the session is
process-global; several tests here record policy events)."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_session():
    obs.disable()
    obs.session().clear()
    yield
    obs.disable()
    obs.session().clear()
    obs.session().buffer_size = obs.DEFAULT_BUFFER_SIZE
