"""Work stealing: ring membership, victim selection, and attribution."""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.core.runtime import PjRuntime
from repro.core.targets import WorkerTarget
from repro.obs import EventKind
from repro.policy import StealRing


def _targets(*names):
    out = [WorkerTarget(n, 1, steal=True) for n in names]
    return out


def test_ring_membership_is_idempotent_and_reversible():
    ring = StealRing()
    a, b = _targets("a", "b")
    try:
        ring.register(a)
        ring.register(a)
        ring.register(b)
        assert len(ring) == 2
        ring.unregister(a)
        ring.unregister(a)  # second leave is a no-op, not an error
        assert ring.members() == [b]
    finally:
        a.shutdown(wait=True)
        b.shutdown(wait=True)


def test_steal_picks_deepest_backlog():
    ring = StealRing()
    # Park every lane so posted work stays queued and depths are stable.
    gates = []
    shallow, deep, thief = _targets("shallow", "deep", "thief")
    try:
        for t in (shallow, deep):
            g = threading.Event()
            gates.append(g)
            t.post(g.wait)
            ring.register(t)
        ring.register(thief)
        time.sleep(0.05)  # let the parked lanes pick up their gate items
        for _ in range(2):
            shallow.post(lambda: None)
        for _ in range(6):
            deep.post(lambda: None)
        got = ring.steal(thief)
        assert got is not None
        victim, _item = got
        assert victim is deep
        # The thief itself is never a victim candidate.
        solo = StealRing()
        solo.register(thief)
        assert solo.steal(thief) is None
    finally:
        for g in gates:
            g.set()
        for t in (shallow, deep, thief):
            t.shutdown(wait=False)


def test_steal_returns_none_when_ring_is_empty_handed():
    ring = StealRing()
    a, b = _targets("a", "b")
    try:
        ring.register(a)
        ring.register(b)
        assert ring.steal(a) is None  # sibling exists but has no work
    finally:
        a.shutdown(wait=True)
        b.shutdown(wait=True)


def test_runtime_registers_only_consenting_workers():
    rt = PjRuntime()
    try:
        rt.create_worker("joined", 1, steal=True)
        rt.create_worker("solo", 1)  # steal off -> stays out of the ring
        ring = rt._steal_ring
        names = [t.name for t in ring.members()]
        assert names == ["joined"]
    finally:
        rt.shutdown(wait=True)


def test_stolen_work_runs_exactly_once_with_attribution():
    rt = PjRuntime()
    try:
        obs.enable()
        rt.create_worker("busy", 1, steal=True)
        rt.create_worker("idle", 1, steal=True)
        busy = rt.get_target("busy")
        gate = threading.Event()
        busy.post(gate.wait)  # wedge the victim's only lane
        time.sleep(0.05)

        counts = [0] * 20
        handles = []
        for i in range(20):
            h = rt.invoke_target_block(
                "busy", (lambda i=i: counts.__setitem__(i, counts[i] + 1)), "nowait"
            )
            handles.append(h)
        time.sleep(0.3)  # idle's lane polls, steals, and executes
        gate.set()
        for h in handles:
            h.wait(timeout=5.0)

        assert counts == [1] * 20  # exactly once, never zero, never twice
        steals = [
            e for e in obs.session().events()
            if e.kind is EventKind.PUMP_STEAL
            and isinstance(e.arg, dict)
            and e.arg.get("mode") == "steal"
        ]
        assert steals, "the wedged victim should have been stolen from"
        for e in steals:
            assert e.arg["victim"] == "busy"
            assert e.arg["thief"] == "idle"
            assert e.arg["lane"].startswith("pyjama-idle-")
            # Events for the stolen item still land on the victim target.
            assert e.target == "busy"
    finally:
        rt.shutdown(wait=True)


def test_steal_respects_shutdown_cancellation():
    # Once a queue is closed for drain, steal_work must refuse: an item is
    # stolen XOR cancelled, never both.
    t = WorkerTarget("closing", 1, steal=True)
    gate = threading.Event()
    t.post(gate.wait)
    time.sleep(0.05)
    t.post(lambda: None)
    t._queue.close()
    try:
        assert t._queue.steal_work() is None
    finally:
        gate.set()
        t.shutdown(wait=False)
