"""Pool autoscaling: hysteresis, bounds, and POOL_SCALE evidence."""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.core.targets import WorkerTarget
from repro.obs import EventKind
from repro.policy import PoolAutoscaler


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def test_bounds_validation():
    t = WorkerTarget("t", 1)
    try:
        with pytest.raises(ValueError):
            PoolAutoscaler(t, min_lanes=0, max_lanes=2)
        with pytest.raises(ValueError):
            PoolAutoscaler(t, min_lanes=3, max_lanes=2)
    finally:
        t.shutdown(wait=True)


def test_grows_under_backlog_and_shrinks_back_when_idle():
    obs.enable()
    t = WorkerTarget("elastic", 1)
    scaler = PoolAutoscaler(
        t, min_lanes=1, max_lanes=3, interval=0.02,
        grow_after=2, shrink_after=5, cooldown=2,
    ).start()
    try:
        gate = threading.Event()
        t.post(gate.wait)  # wedge the first lane so backlog builds
        done = []
        for i in range(40):
            t.post(lambda i=i: done.append(i))
        assert _wait_until(lambda: t.pool_size >= 2), "pool never grew"
        gate.set()
        assert _wait_until(lambda: len(done) == 40)
        # With the backlog gone, the idle streak retires the extra lanes.
        assert _wait_until(lambda: t.pool_size == 1), "pool never shrank back"
        assert scaler.decisions >= 2

        events = [e for e in obs.session().events() if e.kind is EventKind.POOL_SCALE]
        grows = [e for e in events if e.name == "grow"]
        shrinks = [e for e in events if e.name == "shrink"]
        assert grows and shrinks
        for e in events:
            assert e.target == "elastic"
            assert set(e.arg) == {"from", "to", "depth"}
            assert abs(e.arg["to"] - e.arg["from"]) == 1
        # Lane count never escaped the configured bounds.
        for e in grows:
            assert e.arg["to"] <= 3
        for e in shrinks:
            assert e.arg["to"] >= 1
    finally:
        scaler.stop()
        t.shutdown(wait=True)


def test_steady_inband_load_holds_the_pool():
    t = WorkerTarget("steady", 1)
    scaler = PoolAutoscaler(
        t, min_lanes=1, max_lanes=4, interval=0.01,
        grow_after=2, high_water_per_lane=50.0, shrink_after=1000,
    ).start()
    try:
        for _ in range(30):
            t.post(lambda: time.sleep(0.002))
        time.sleep(0.3)
        # Backlog stayed below the (high) watermark and above zero long
        # enough that neither streak fired: hysteresis holds the pool.
        assert t.pool_size == 1
        assert scaler.decisions == 0
    finally:
        scaler.stop()
        t.shutdown(wait=True)


def test_shutdown_stops_an_attached_autoscaler():
    t = WorkerTarget("auto", 1, autoscale=True, autoscale_min=1, autoscale_max=2)
    scaler = t.autoscaler
    assert scaler is not None and scaler.running
    t.shutdown(wait=True)
    assert not scaler.running


def test_retire_never_drops_below_floor():
    t = WorkerTarget("floor", 1)
    try:
        # Direct retire on a 1-lane pool is refused (pool_size is _desired).
        t._retire_lane()
        assert t.pool_size == 1
        t.post(lambda: None)
        time.sleep(0.1)
        assert t.work_count() == 0  # the lane is still alive and consuming
    finally:
        t.shutdown(wait=True)


def test_grow_then_retire_round_trips_lane_count():
    t = WorkerTarget("round", 1)
    try:
        t._grow_lane()
        assert t.pool_size == 2
        t._retire_lane()
        assert t.pool_size == 1
        ran = threading.Event()
        t.post(ran.set)
        assert ran.wait(5.0)  # surviving lane still serves the queue
    finally:
        t.shutdown(wait=True)
