"""Env-knob parsing and ICV seeding for the adaptive policies."""

from __future__ import annotations

from repro.core.runtime import PjRuntime
from repro.policy import (
    AUTOSCALE_ENV,
    BATCH_MAX_ENV,
    STEAL_ENV,
    PolicyConfig,
    policy_from_env,
)


def test_defaults_are_off(monkeypatch):
    for var in (STEAL_ENV, BATCH_MAX_ENV, AUTOSCALE_ENV):
        monkeypatch.delenv(var, raising=False)
    assert policy_from_env() == PolicyConfig(steal=False, batch_max=1, autoscale=False)


def test_truthy_and_falsy_flag_spellings(monkeypatch):
    for raw, expected in [
        ("1", True), ("true", True), ("on", True), ("YES", True),
        ("0", False), ("false", False), ("off", False), ("no", False), ("", False),
    ]:
        monkeypatch.setenv(STEAL_ENV, raw)
        monkeypatch.setenv(AUTOSCALE_ENV, raw)
        cfg = policy_from_env()
        assert cfg.steal is expected, raw
        assert cfg.autoscale is expected, raw


def test_batch_max_parsing(monkeypatch):
    monkeypatch.setenv(BATCH_MAX_ENV, "16")
    assert policy_from_env().batch_max == 16
    # Malformed and sub-1 values fall back to the safe default/floor.
    monkeypatch.setenv(BATCH_MAX_ENV, "bogus")
    assert policy_from_env().batch_max == 1
    monkeypatch.setenv(BATCH_MAX_ENV, "0")
    assert policy_from_env().batch_max == 1


def test_runtime_icvs_seed_from_env_at_construction(monkeypatch):
    monkeypatch.setenv(STEAL_ENV, "1")
    monkeypatch.setenv(BATCH_MAX_ENV, "8")
    monkeypatch.setenv(AUTOSCALE_ENV, "1")
    rt = PjRuntime()
    try:
        assert rt.steal_var is True
        assert rt.batch_max_var == 8
        assert rt.autoscale_var is True
    finally:
        rt.shutdown(wait=False)
    # A runtime built after the env is cleared sees the documented defaults:
    # the knobs are read per construction, not snapshotted at import.
    for var in (STEAL_ENV, BATCH_MAX_ENV, AUTOSCALE_ENV):
        monkeypatch.delenv(var, raising=False)
    rt2 = PjRuntime()
    try:
        assert rt2.steal_var is False
        assert rt2.batch_max_var == 1
        assert rt2.autoscale_var is False
    finally:
        rt2.shutdown(wait=False)


def test_create_worker_resolves_icvs_and_per_call_overrides(monkeypatch):
    monkeypatch.setenv(BATCH_MAX_ENV, "4")
    monkeypatch.setenv(STEAL_ENV, "1")
    monkeypatch.delenv(AUTOSCALE_ENV, raising=False)
    rt = PjRuntime()
    try:
        inherited = rt.create_worker("inherited", 1)
        assert inherited.batch_max == 4
        assert inherited.steal_enabled is True
        assert inherited.autoscaler is None
        # Per-call arguments beat the ICVs.
        overridden = rt.create_worker("overridden", 1, steal=False, batch_max=1)
        assert overridden.batch_max == 1
        assert overridden.steal_enabled is False
    finally:
        rt.shutdown(wait=False)
