"""Dequeue batching: FIFO order, sentinel barriers, and the batch bound."""

from __future__ import annotations

import queue
import threading
import time

import pytest

from repro.core.runtime import PjRuntime
from repro.core.targets import _SHUTDOWN, _TargetQueue, WorkerTarget


def test_get_batch_preserves_fifo_and_respects_bound():
    q = _TargetQueue("t")
    for i in range(10):
        q.put(i)
    assert q.get_batch(4) == [0, 1, 2, 3]
    assert q.get_batch(4) == [4, 5, 6, 7]
    assert q.get_batch(4) == [8, 9]
    assert q.work_count() == 0
    with pytest.raises(queue.Empty):
        q.get_batch(4, timeout=0.01)


def test_get_batch_stops_before_a_sentinel_and_returns_it_alone():
    q = _TargetQueue("t")
    q.put(1)
    q.put(2)
    q.put_internal(_SHUTDOWN)
    q.put(3)
    # Work queued before the sentinel comes out first, never alongside it.
    assert q.get_batch(8) == [1, 2]
    assert q.get_batch(8) == [_SHUTDOWN]
    assert q.get_batch(8) == [3]


def test_get_batch_frees_bounded_capacity_for_blocked_posters():
    q = _TargetQueue("t", capacity=2)
    q.put(1)
    q.put(2)
    landed = threading.Event()

    def poster() -> None:
        q.put(3, block=True, timeout=5.0)
        landed.set()

    t = threading.Thread(target=poster, daemon=True)
    t.start()
    time.sleep(0.05)
    assert not landed.is_set()
    assert q.get_batch(2) == [1, 2]
    assert landed.wait(5.0)
    t.join()


def test_worker_executes_batches_in_post_order():
    target = WorkerTarget("batcher", 1, batch_max=8)
    try:
        gate = threading.Event()
        order: list[int] = []
        done = threading.Event()
        target.post(gate.wait)  # park the lane so a real backlog builds

        def make(i: int):
            def body() -> None:
                order.append(i)
                if i == 19:
                    done.set()
            return body

        for i in range(20):
            target.post(make(i))
        gate.set()
        assert done.wait(5.0)
        assert order == list(range(20))
    finally:
        target.shutdown(wait=True)


def test_batch_max_validation():
    with pytest.raises(ValueError):
        WorkerTarget("bad", 1, batch_max=0)


def test_shutdown_wait_drains_backlog_with_batching():
    rt = PjRuntime()
    try:
        rt.create_worker("w", 1, batch_max=16)
        ran: list[int] = []
        gate = threading.Event()
        rt.get_target("w").post(gate.wait)
        for i in range(30):
            rt.invoke_target_block("w", (lambda i=i: ran.append(i)), "nowait")
        gate.set()
        rt.shutdown(wait=True)
        assert ran == list(range(30))
    finally:
        rt.shutdown(wait=False)
