"""Tests for the RayTracer kernel."""

import numpy as np
import pytest

from repro.kernels import raytracer as rt


@pytest.fixture(scope="module")
def scene():
    return rt.default_scene()


class TestScene:
    def test_default_scene_has_64_spheres(self, scene):
        assert len(scene.spheres) == 64

    def test_scene_deterministic(self):
        a, b = rt.default_scene(), rt.default_scene()
        assert [s.center for s in a.spheres] == [s.center for s in b.spheres]
        assert [s.color for s in a.spheres] == [s.color for s in b.spheres]

    def test_custom_sphere_count(self):
        assert len(rt.default_scene(10).spheres) == 10
        assert len(rt.default_scene(70).spheres) == 70

    def test_arrays_shapes(self, scene):
        centers, radii, colors, refl, spec = scene.arrays()
        n = len(scene.spheres)
        assert centers.shape == (n, 3)
        assert radii.shape == (n,)
        assert colors.shape == (n, 3)
        assert refl.shape == (n,)
        assert spec.shape == (n,)


class TestRendering:
    def test_output_shape_and_range(self, scene):
        img = rt.render(scene, width=24, height=16)
        assert img.shape == (16, 24, 3)
        assert (img >= 0.0).all() and (img <= 1.0).all()

    def test_image_not_all_background(self, scene):
        img = rt.render(scene, width=32, height=32)
        bg = np.array(scene.background)
        assert (np.abs(img - bg).sum(axis=2) > 0.05).any()

    def test_deterministic(self, scene):
        a = rt.render(scene, 16, 16)
        b = rt.render(scene, 16, 16)
        assert np.array_equal(a, b)

    def test_checksum_positive(self, scene):
        img = rt.render(scene, 16, 16)
        assert 0.0 < rt.checksum(img) < img.size

    def test_empty_scene_renders_background(self):
        empty = rt.Scene(spheres=[rt.Sphere((0, 0, 100.0), 0.001, (1, 1, 1))])
        # One tiny far-away sphere: nearly every pixel is background.
        img = rt.render(empty, 8, 8)
        bg = np.array(empty.background)
        frac_bg = (np.abs(img - bg).sum(axis=2) < 1e-9).mean()
        assert frac_bg > 0.9

    def test_reflection_depth_changes_image(self, scene):
        import dataclasses

        flat = dataclasses.replace(scene, max_depth=0)
        deep = dataclasses.replace(scene, max_depth=2)
        assert not np.array_equal(rt.render(flat, 24, 24), rt.render(deep, 24, 24))


class TestRowDecomposition:
    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 5])
    def test_rows_match_full_render(self, scene, n_chunks):
        h = w = 20
        whole = rt.render(scene, w, h)
        stitched = np.empty_like(whole)
        base, extra = divmod(h, n_chunks)
        start = 0
        for i in range(n_chunks):
            size = base + (1 if i < extra else 0)
            stitched[start : start + size] = rt.render_rows(
                scene, w, h, slice(start, start + size)
            )
            start += size
        assert np.array_equal(stitched, whole)

    def test_single_row(self, scene):
        row = rt.render_rows(scene, 16, 16, slice(7, 8))
        assert row.shape == (1, 16, 3)


class TestIntersection:
    def test_direct_hit(self):
        origins = np.array([[0.0, 0.0, -5.0]])
        dirs = np.array([[0.0, 0.0, 1.0]])
        centers = np.array([[0.0, 0.0, 0.0]])
        radii = np.array([1.0])
        t, idx = rt._intersect(origins, dirs, centers, radii)
        assert idx[0] == 0
        assert t[0] == pytest.approx(4.0)

    def test_miss(self):
        origins = np.array([[0.0, 0.0, -5.0]])
        dirs = np.array([[0.0, 1.0, 0.0]])
        centers = np.array([[0.0, 0.0, 0.0]])
        radii = np.array([1.0])
        t, idx = rt._intersect(origins, dirs, centers, radii)
        assert idx[0] == -1
        assert np.isinf(t[0])

    def test_nearest_of_two(self):
        origins = np.array([[0.0, 0.0, -5.0]])
        dirs = np.array([[0.0, 0.0, 1.0]])
        centers = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 3.0]])
        radii = np.array([1.0, 1.0])
        t, idx = rt._intersect(origins, dirs, centers, radii)
        assert idx[0] == 0

    def test_inside_sphere_uses_far_root(self):
        origins = np.array([[0.0, 0.0, 0.0]])
        dirs = np.array([[0.0, 0.0, 1.0]])
        centers = np.array([[0.0, 0.0, 0.0]])
        radii = np.array([2.0])
        t, idx = rt._intersect(origins, dirs, centers, radii)
        assert idx[0] == 0
        assert t[0] == pytest.approx(2.0)
