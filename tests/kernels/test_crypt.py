"""Tests for the IDEA Crypt kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import crypt


@pytest.fixture(scope="module")
def keys():
    user = crypt.generate_key()
    ek = crypt.encryption_subkeys(user)
    dk = crypt.decryption_subkeys(ek)
    return ek, dk


class TestKeySchedule:
    def test_subkey_count_and_range(self, keys):
        ek, dk = keys
        assert ek.shape == (52,)
        assert dk.shape == (52,)
        assert (ek <= 0xFFFF).all()
        assert (dk <= 0xFFFF).all()

    def test_first_eight_subkeys_are_user_key(self):
        user = crypt.generate_key(seed=7)
        ek = crypt.encryption_subkeys(user)
        assert np.array_equal(ek[:8], user)

    def test_generate_key_deterministic(self):
        assert np.array_equal(crypt.generate_key(5), crypt.generate_key(5))
        assert not np.array_equal(crypt.generate_key(5), crypt.generate_key(6))

    def test_bad_key_shape_rejected(self):
        with pytest.raises(ValueError):
            crypt.encryption_subkeys(np.zeros(7, dtype=np.uint32))
        with pytest.raises(ValueError):
            crypt.decryption_subkeys(np.zeros(10, dtype=np.uint32))

    def test_double_inversion_is_identity(self, keys):
        ek, dk = keys
        assert np.array_equal(crypt.decryption_subkeys(dk), ek)


class TestCipher:
    def test_roundtrip(self, keys):
        ek, dk = keys
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=8 * 500, dtype=np.uint8)
        assert np.array_equal(crypt.decrypt(crypt.encrypt(data, ek), dk), data)

    def test_ciphertext_differs_from_plaintext(self, keys):
        ek, _ = keys
        data = np.zeros(8 * 100, dtype=np.uint8)
        assert not np.array_equal(crypt.encrypt(data, ek), data)

    def test_deterministic(self, keys):
        ek, _ = keys
        data = np.arange(80, dtype=np.uint8)
        assert np.array_equal(crypt.encrypt(data, ek), crypt.encrypt(data, ek))

    def test_key_sensitivity(self):
        data = np.arange(64, dtype=np.uint8)
        ct1 = crypt.encrypt(data, crypt.encryption_subkeys(crypt.generate_key(1)))
        ct2 = crypt.encrypt(data, crypt.encryption_subkeys(crypt.generate_key(2)))
        assert not np.array_equal(ct1, ct2)

    def test_block_independence(self, keys):
        # ECB mode: identical blocks encrypt identically, different blocks
        # can be processed in any partition -> parallelisable.
        ek, _ = keys
        block = np.arange(8, dtype=np.uint8)
        two = np.concatenate([block, block])
        ct = crypt.encrypt(two, ek)
        assert np.array_equal(ct[:8], ct[8:])

    def test_rejects_unaligned_length(self, keys):
        ek, _ = keys
        with pytest.raises(ValueError):
            crypt.encrypt(np.zeros(7, dtype=np.uint8), ek)

    def test_rejects_wrong_dtype(self, keys):
        ek, _ = keys
        with pytest.raises(ValueError):
            crypt.encrypt(np.zeros(8, dtype=np.int32), ek)

    def test_cipher_shape_check(self, keys):
        ek, _ = keys
        with pytest.raises(ValueError):
            crypt.idea_cipher(np.zeros((4, 3), dtype=np.uint32), ek)

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, seed, n_blocks):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, size=8 * n_blocks, dtype=np.uint8)
        user = crypt.generate_key(seed)
        ek = crypt.encryption_subkeys(user)
        dk = crypt.decryption_subkeys(ek)
        assert np.array_equal(crypt.decrypt(crypt.encrypt(data, ek), dk), data)


class TestChunking:
    def test_block_slices_cover_range(self):
        slices = crypt.block_slices(8 * 10, 3)
        covered = []
        for s in slices:
            assert s.start % 8 == 0 and s.stop % 8 == 0
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(80))

    def test_block_slices_reject_unaligned(self):
        with pytest.raises(ValueError):
            crypt.block_slices(81, 3)

    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 7, 16])
    def test_chunked_encrypt_matches_sequential(self, keys, n_chunks):
        ek, _ = keys
        rng = np.random.default_rng(3)
        data = rng.integers(0, 256, size=8 * 128, dtype=np.uint8)
        whole = crypt.encrypt(data, ek)
        stitched = np.empty_like(data)
        for s, chunk in crypt.encrypt_chunks(data, ek, n_chunks):
            stitched[s] = chunk
        assert np.array_equal(stitched, whole)

    def test_more_chunks_than_blocks(self, keys):
        ek, _ = keys
        data = np.arange(16, dtype=np.uint8)  # 2 blocks
        stitched = np.empty_like(data)
        for s, chunk in crypt.encrypt_chunks(data, ek, 5):
            stitched[s] = chunk
        assert np.array_equal(stitched, crypt.encrypt(data, ek))
