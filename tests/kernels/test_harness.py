"""Tests for the kernel harness facade."""

import numpy as np
import pytest

from repro.kernels import KERNELS, get_kernel, kernel_names, paper_kernel_names, time_kernel


class TestRegistry:
    def test_all_four_paper_kernels_present(self):
        # Paper §V-A: "Selected were Crypt, RayTracer, MonteCarlo and Series."
        assert set(paper_kernel_names()) == {"crypt", "raytracer", "montecarlo", "series"}

    def test_extension_kernels_marked(self):
        assert {"sor", "sparse"} <= set(kernel_names())
        assert not KERNELS["sor"].in_paper
        assert not KERNELS["sparse"].in_paper

    def test_get_kernel(self):
        assert get_kernel("crypt").name == "crypt"

    def test_get_unknown_kernel(self):
        with pytest.raises(KeyError):
            get_kernel("linpack")

    def test_size_classes(self):
        for spec in KERNELS.values():
            assert set(spec.sizes) == {"A", "B", "C"}
            assert spec.sizes["A"] < spec.sizes["B"] < spec.sizes["C"]


@pytest.mark.parametrize("name", sorted(KERNELS))
class TestEveryKernel:
    def test_validates_at_size_a(self, name):
        spec = get_kernel(name)
        assert spec.validate(spec.sizes["A"])

    def test_sequential_runs(self, name):
        spec = get_kernel(name)
        assert spec.run_sequential(spec.sizes["A"]) is not None

    def test_chunks_run_and_cover(self, name):
        spec = get_kernel(name)
        size = spec.sizes["A"]
        parts = [spec.run_chunk(size, i, 4) for i in range(4)]
        assert all(p is not None for p in parts)

    def test_chunk_equivalence_where_stitchable(self, name):
        """For array-output kernels, chunks must stitch to the reference
        (sequential result, or the kernel's declared phase reference); for
        reduction kernels the combine operator must agree."""
        spec = get_kernel(name)
        size = spec.sizes["A"]
        reference = (
            spec.stitch_reference(size)
            if spec.stitch_reference is not None
            else spec.run_sequential(size)
        )
        parts = [spec.run_chunk(size, i, 3) for i in range(3)]
        if isinstance(reference, np.ndarray):
            stitched = np.concatenate(parts)
            flat_ref = reference.reshape(stitched.shape)
            assert np.allclose(stitched.astype(float), flat_ref.astype(float))
        else:  # montecarlo PathResult
            acc = parts[0]
            for p in parts[1:]:
                acc = acc.combine(p)
            assert acc.mean_final_price == pytest.approx(
                reference.mean_final_price, rel=1e-9
            )


class TestTiming:
    def test_time_kernel_positive(self):
        assert time_kernel("series", "A", repeats=1) > 0.0
