"""Tests for the MonteCarlo stock-path kernel."""

import numpy as np
import pytest

from repro.kernels import montecarlo as mc


class TestSimulation:
    def test_parameter_recovery(self):
        cfg = mc.MonteCarloConfig(n_paths=400)
        res = mc.run(cfg)
        assert res.n_paths == 400
        assert res.mean_sigma == pytest.approx(cfg.sigma, abs=0.02)
        assert res.mean_mu == pytest.approx(cfg.mu, abs=0.3)  # mu has high MC noise

    def test_final_price_near_analytic_mean(self):
        cfg = mc.MonteCarloConfig(n_paths=800)
        res = mc.run(cfg)
        horizon = cfg.n_steps * cfg.dt
        analytic = cfg.s0 * np.exp(cfg.mu * horizon)
        assert res.mean_final_price == pytest.approx(analytic, rel=0.05)

    def test_deterministic_given_seed(self):
        cfg = mc.MonteCarloConfig(n_paths=50)
        assert mc.run(cfg) == mc.run(cfg)

    def test_seed_changes_result(self):
        a = mc.run(mc.MonteCarloConfig(n_paths=50, seed=1))
        b = mc.run(mc.MonteCarloConfig(n_paths=50, seed=2))
        assert a != b

    def test_empty_range(self):
        cfg = mc.MonteCarloConfig()
        res = mc.simulate_paths(cfg, 0, 0)
        assert res.n_paths == 0


class TestDecomposition:
    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 8])
    def test_chunked_combine_matches_sequential(self, n_chunks):
        cfg = mc.MonteCarloConfig(n_paths=120)
        whole = mc.run(cfg)
        parts = [
            mc.simulate_paths(cfg, first, count)
            for first, count in mc.path_chunks(cfg, n_chunks)
        ]
        combined = parts[0]
        for p in parts[1:]:
            combined = combined.combine(p)
        assert combined.n_paths == whole.n_paths
        assert combined.mean_mu == pytest.approx(whole.mean_mu, rel=1e-9)
        assert combined.mean_sigma == pytest.approx(whole.mean_sigma, rel=1e-9)
        assert combined.mean_final_price == pytest.approx(whole.mean_final_price, rel=1e-9)

    def test_path_chunks_partition(self):
        cfg = mc.MonteCarloConfig(n_paths=10)
        chunks = mc.path_chunks(cfg, 3)
        covered = sorted(i for first, count in chunks for i in range(first, first + count))
        assert covered == list(range(10))

    def test_combine_with_empty(self):
        cfg = mc.MonteCarloConfig(n_paths=30)
        res = mc.run(cfg)
        empty = mc.PathResult(0.0, 0.0, 0.0, 0)
        assert res.combine(empty) == res
        assert empty.combine(res) == res
        assert empty.combine(empty).n_paths == 0

    def test_combine_is_weighted(self):
        a = mc.PathResult(mean_mu=1.0, mean_sigma=1.0, mean_final_price=10.0, n_paths=1)
        b = mc.PathResult(mean_mu=3.0, mean_sigma=3.0, mean_final_price=30.0, n_paths=3)
        c = a.combine(b)
        assert c.mean_mu == pytest.approx(2.5)
        assert c.mean_final_price == pytest.approx(25.0)
        assert c.n_paths == 4

    def test_partition_invariance(self):
        """Per-path RNG streams mean any chunking yields identical results."""
        cfg = mc.MonteCarloConfig(n_paths=40)
        by2 = [mc.simulate_paths(cfg, f, c) for f, c in mc.path_chunks(cfg, 2)]
        by5 = [mc.simulate_paths(cfg, f, c) for f, c in mc.path_chunks(cfg, 5)]
        acc2 = by2[0]
        for p in by2[1:]:
            acc2 = acc2.combine(p)
        acc5 = by5[0]
        for p in by5[1:]:
            acc5 = acc5.combine(p)
        assert acc2.mean_final_price == pytest.approx(acc5.mean_final_price, rel=1e-9)
