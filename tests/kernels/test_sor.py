"""Tests for the SOR extension kernel (phase-parallel structure)."""

import numpy as np
import pytest

import repro.openmp as omp
from repro.kernels import sor


class TestGrid:
    def test_deterministic(self):
        assert np.array_equal(sor.initial_grid(16), sor.initial_grid(16))

    def test_seed_sensitivity(self):
        assert not np.array_equal(sor.initial_grid(16, seed=1), sor.initial_grid(16, seed=2))

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            sor.initial_grid(2)


class TestSweeps:
    def test_red_sweep_touches_only_red_interior(self):
        grid = sor.initial_grid(10)
        before = grid.copy()
        sor.sweep_color(grid, sor.RED)
        changed = grid != before
        rows, cols = np.nonzero(changed)
        # only interior cells
        assert rows.min() >= 1 and rows.max() <= 8
        assert cols.min() >= 1 and cols.max() <= 8
        # only red-parity cells
        assert np.all((rows + cols) % 2 == sor.RED)

    def test_black_sweep_parity(self):
        grid = sor.initial_grid(10)
        before = grid.copy()
        sor.sweep_color(grid, sor.BLACK)
        rows, cols = np.nonzero(grid != before)
        assert np.all((rows + cols) % 2 == sor.BLACK)

    def test_boundary_never_changes(self):
        grid = sor.initial_grid(12)
        boundary = np.concatenate([grid[0], grid[-1], grid[:, 0], grid[:, -1]]).copy()
        out = sor.run(12, iterations=5)
        init = sor.initial_grid(12)
        assert np.array_equal(out[0], init[0])
        assert np.array_equal(out[-1], init[-1])
        assert np.array_equal(out[:, 0], init[:, 0])
        assert np.array_equal(out[:, -1], init[:, -1])
        assert boundary.shape  # silence unused warning

    def test_invalid_color(self):
        with pytest.raises(ValueError):
            sor.sweep_color(sor.initial_grid(8), 2)

    def test_band_decomposition_matches_full_sweep(self):
        """Disjoint row bands of one color commute — the worksharing axis."""
        full = sor.initial_grid(20)
        sor.sweep_color(full, sor.RED)
        banded = sor.initial_grid(20)
        for start, stop in ((1, 7), (7, 13), (13, 19)):
            sor.sweep_color_rows(banded, sor.RED, start, stop)
        assert np.allclose(full, banded)

    def test_band_order_irrelevant(self):
        a = sor.initial_grid(16)
        b = sor.initial_grid(16)
        sor.sweep_color_rows(a, sor.BLACK, 1, 8)
        sor.sweep_color_rows(a, sor.BLACK, 8, 15)
        sor.sweep_color_rows(b, sor.BLACK, 8, 15)
        sor.sweep_color_rows(b, sor.BLACK, 1, 8)
        assert np.allclose(a, b)

    def test_empty_band_noop(self):
        grid = sor.initial_grid(8)
        before = grid.copy()
        sor.sweep_color_rows(grid, sor.RED, 5, 5)
        assert np.array_equal(grid, before)


class TestConvergence:
    def test_residual_decreases(self):
        def residual(g):
            nb = 0.25 * (g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:])
            return float(np.abs(g[1:-1, 1:-1] - nb).mean())

        r0 = residual(sor.initial_grid(32))
        r1 = residual(sor.run(32, iterations=5))
        r2 = residual(sor.run(32, iterations=40))
        assert r1 < r0
        assert r2 < r1

    def test_checksum_finite(self):
        assert np.isfinite(sor.checksum(sor.run(16)))


class TestWithOpenMP:
    def test_parallel_red_black_iteration_matches_sequential(self):
        """The natural omp usage: bands in `for_loop` (implied barrier
        separates the red and black phases)."""
        n, iters = 24, 4
        expected = sor.run(n, iterations=iters)
        grid = sor.initial_grid(n)
        bands = [(1, 9), (9, 17), (17, 23)]

        def body():
            for _ in range(iters):
                omp.for_loop(
                    bands, lambda b: sor.sweep_color_rows(grid, sor.RED, b[0], b[1])
                )
                omp.for_loop(
                    bands, lambda b: sor.sweep_color_rows(grid, sor.BLACK, b[0], b[1])
                )

        omp.parallel(body, num_threads=3)
        assert np.allclose(grid, expected)
