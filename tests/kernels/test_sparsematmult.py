"""Tests for the SparseMatMult extension kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.openmp as omp
from repro.kernels import sparsematmult as sp


class TestCsr:
    def test_random_deterministic(self):
        a, b = sp.random_csr(50, seed=3), sp.random_csr(50, seed=3)
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.col_idx, b.col_idx)

    def test_structure_valid(self):
        m = sp.random_csr(100)
        assert m.row_ptr[0] == 0
        assert m.row_ptr[-1] == m.nnz
        assert (np.diff(m.row_ptr) >= 0).all()
        assert (m.col_idx < m.n_cols).all()

    def test_skew_produces_uneven_rows(self):
        m = sp.random_csr(300, skew=3.0)
        lengths = np.diff(m.row_ptr)
        assert lengths.max() > 3 * max(1, int(np.median(lengths)))

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            sp.CsrMatrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            sp.random_csr(0)

    def test_to_dense_shape(self):
        m = sp.random_csr(20)
        assert m.to_dense().shape == (20, 20)


class TestMatvec:
    def test_matches_dense(self):
        m = sp.random_csr(80, seed=5)
        x = np.random.default_rng(1).standard_normal(80)
        assert np.allclose(sp.matvec(m, x), m.to_dense() @ x)

    def test_wrong_vector_size(self):
        m = sp.random_csr(10)
        with pytest.raises(ValueError):
            sp.matvec(m, np.zeros(11))

    @pytest.mark.parametrize("n_chunks", [1, 2, 5])
    def test_row_chunks_stitch(self, n_chunks):
        m = sp.random_csr(61, seed=2)
        x = np.random.default_rng(2).standard_normal(61)
        whole = sp.matvec(m, x)
        parts = []
        base, extra = divmod(61, n_chunks)
        start = 0
        for i in range(n_chunks):
            rows = base + (1 if i < extra else 0)
            parts.append(sp.matvec_rows(m, x, start, start + rows))
            start += rows
        assert np.allclose(np.concatenate(parts), whole)

    def test_out_of_range_rows_clamped(self):
        m = sp.random_csr(10)
        x = np.zeros(10)
        assert sp.matvec_rows(m, x, -5, 100).shape == (10,)

    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_matvec_property(self, n, seed):
        m = sp.random_csr(n, seed=seed)
        x = np.random.default_rng(seed).standard_normal(n)
        assert np.allclose(sp.matvec(m, x), m.to_dense() @ x, atol=1e-9)

    def test_run_returns_unit_ish_vector(self):
        x = sp.run(50, repeats=5)
        assert x.shape == (50,)
        assert np.isfinite(x).all()


class TestWithSchedules:
    @pytest.mark.parametrize("schedule", ["static", "dynamic", "guided"])
    def test_parallel_matvec_every_schedule(self, schedule):
        """Irregular row costs are why dynamic/guided exist; all three
        schedules must agree on the value."""
        n = 90
        m = sp.random_csr(n, seed=11, skew=3.0)
        x = np.random.default_rng(4).standard_normal(n)
        expected = sp.matvec(m, x)
        out = np.zeros(n)

        def body():
            omp.for_loop(
                n,
                lambda r: out.__setitem__(r, sp.matvec_rows(m, x, r, r + 1)[0]),
                schedule=schedule,
                chunk=4,
            )

        omp.parallel(body, num_threads=3)
        assert np.allclose(out, expected)
