"""Tests for the Series (Fourier coefficients) kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import series


class TestAccuracy:
    def test_against_frozen_reference(self):
        got = series.fourier_coefficients(4)
        for j, (a, b) in series.reference_first_coefficients().items():
            assert got[j, 0] == pytest.approx(a, abs=5e-3)
            assert got[j, 1] == pytest.approx(b, abs=5e-3)

    def test_against_scipy_quad(self):
        quad = pytest.importorskip("scipy.integrate").quad
        f = lambda x: (x + 1) ** x  # noqa: E731
        got = series.fourier_coefficients(3)
        for j in range(1, 3):
            a = quad(lambda x: f(x) * np.cos(j * np.pi * x), 0, 2, limit=200)[0]
            b = quad(lambda x: f(x) * np.sin(j * np.pi * x), 0, 2, limit=200)[0]
            assert got[j, 0] == pytest.approx(a, abs=5e-3)
            assert got[j, 1] == pytest.approx(b, abs=5e-3)

    def test_a0_is_interval_mean(self):
        got = series.fourier_coefficients(1)
        x = np.linspace(0, 2, 100001)
        mean = np.trapezoid((x + 1) ** x, x) / 2.0
        assert got[0, 0] == pytest.approx(mean, abs=1e-4)
        assert got[0, 1] == 0.0

    def test_more_points_converges(self):
        coarse = series.fourier_coefficients(3, points=100)
        fine = series.fourier_coefficients(3, points=10000)
        ref = series.reference_first_coefficients()
        for j in range(1, 3):
            err_c = abs(coarse[j, 0] - ref[j][0])
            err_f = abs(fine[j, 0] - ref[j][0])
            assert err_f <= err_c

    def test_coefficients_decay(self):
        # Fourier coefficients of an absolutely continuous function decay.
        got = series.fourier_coefficients(30)
        mags = np.hypot(got[1:, 0], got[1:, 1])
        assert mags[-1] < mags[0]


class TestDecomposition:
    def test_range_shape(self):
        out = series.coefficient_range(5, 9)
        assert out.shape == (4, 2)

    def test_empty_range(self):
        assert series.coefficient_range(3, 3).shape == (0, 2)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            series.coefficient_range(5, 2)
        with pytest.raises(ValueError):
            series.coefficient_range(-1, 2)

    @pytest.mark.parametrize("n,n_chunks", [(10, 1), (10, 3), (10, 10), (7, 4)])
    def test_chunks_match_sequential(self, n, n_chunks):
        whole = series.fourier_coefficients(n)
        stitched = np.empty_like(whole)
        for s, part in series.coefficient_chunks(n, n_chunks):
            stitched[s] = part
        assert np.allclose(stitched, whole)

    def test_chunks_skip_empty(self):
        chunks = series.coefficient_chunks(2, 5)
        assert len(chunks) == 2

    @given(st.integers(min_value=1, max_value=24), st.integers(min_value=1, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_chunk_cover_property(self, n, n_chunks):
        covered = sorted(
            i for s, _ in series.coefficient_chunks(n, n_chunks) for i in range(s.start, s.stop)
        )
        assert covered == list(range(n))
