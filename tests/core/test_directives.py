"""Unit tests for the directive semantic model (paper Figure 5)."""

import pytest

from repro.core import (
    DataClause,
    DataSharing,
    DirectiveSyntaxError,
    SchedulingMode,
    TargetDirective,
    TargetKind,
    TargetProperty,
)


class TestTargetProperty:
    def test_virtual_factory(self):
        p = TargetProperty.virtual("worker")
        assert p.kind is TargetKind.VIRTUAL
        assert p.name == "worker"
        assert p.device_number is None

    def test_device_factory(self):
        p = TargetProperty.device(0)
        assert p.kind is TargetKind.DEVICE
        assert p.device_number == 0

    def test_virtual_requires_name(self):
        with pytest.raises(DirectiveSyntaxError):
            TargetProperty(kind=TargetKind.VIRTUAL, name=None)

    def test_virtual_rejects_empty_name(self):
        with pytest.raises(DirectiveSyntaxError):
            TargetProperty(kind=TargetKind.VIRTUAL, name="")

    def test_device_requires_number(self):
        with pytest.raises(DirectiveSyntaxError):
            TargetProperty(kind=TargetKind.DEVICE)

    def test_str_roundtrip_forms(self):
        assert str(TargetProperty.virtual("edt")) == "virtual(edt)"
        assert str(TargetProperty.device(2)) == "device(2)"

    def test_frozen(self):
        p = TargetProperty.virtual("worker")
        with pytest.raises(AttributeError):
            p.name = "other"


class TestSchedulingMode:
    def test_values_match_clause_spelling(self):
        assert SchedulingMode("nowait") is SchedulingMode.NOWAIT
        assert SchedulingMode("await") is SchedulingMode.AWAIT
        assert SchedulingMode("name_as") is SchedulingMode.NAME_AS
        assert SchedulingMode("default") is SchedulingMode.DEFAULT

    def test_fire_and_forget_classification(self):
        # Algorithm 1 lines 10-12: nowait and name_as return immediately.
        assert SchedulingMode.NOWAIT.is_fire_and_forget
        assert SchedulingMode.NAME_AS.is_fire_and_forget
        assert not SchedulingMode.DEFAULT.is_fire_and_forget
        assert not SchedulingMode.AWAIT.is_fire_and_forget


class TestTargetDirective:
    def test_minimal_virtual_directive(self):
        d = TargetDirective(target=TargetProperty.virtual("worker"))
        assert d.is_virtual
        assert d.mode is SchedulingMode.DEFAULT
        assert d.tag is None

    def test_name_as_requires_tag(self):
        with pytest.raises(DirectiveSyntaxError):
            TargetDirective(
                target=TargetProperty.virtual("worker"), mode=SchedulingMode.NAME_AS
            )

    def test_tag_only_valid_with_name_as(self):
        with pytest.raises(DirectiveSyntaxError):
            TargetDirective(
                target=TargetProperty.virtual("worker"),
                mode=SchedulingMode.NOWAIT,
                tag="t",
            )

    def test_str_rendering_all_clauses(self):
        d = TargetDirective(
            target=TargetProperty.virtual("worker"),
            mode=SchedulingMode.NAME_AS,
            tag="grp",
            if_condition="n > 10",
            data_clauses=(DataClause(DataSharing.FIRSTPRIVATE, ("x", "y")),),
        )
        s = str(d)
        assert "target virtual(worker)" in s
        assert "name_as(grp)" in s
        assert "if(n > 10)" in s
        assert "firstprivate(x, y)" in s

    def test_str_await(self):
        d = TargetDirective(
            target=TargetProperty.virtual("edt"), mode=SchedulingMode.AWAIT
        )
        assert str(d) == "target virtual(edt) await"

    def test_device_directive_is_not_virtual(self):
        d = TargetDirective(target=TargetProperty.device(1))
        assert not d.is_virtual
