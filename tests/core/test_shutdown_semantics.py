"""Tests for target shutdown and backlog semantics."""

import threading
import time

import pytest

from repro.core import PjRuntime, TargetRegion, TargetShutdownError, WorkerTarget


class TestWorkerShutdown:
    def test_shutdown_drains_backlog_first(self):
        """Queued regions posted before shutdown still execute (the shutdown
        sentinel queues FIFO behind them)."""
        target = WorkerTarget("drainer", 1)
        results = []
        regions = [TargetRegion(lambda i=i: results.append(i)) for i in range(6)]
        gate = threading.Event()
        target.post(TargetRegion(gate.wait))
        for r in regions:
            target.post(r)
        gate.set()
        target.shutdown(wait=True)
        assert results == [0, 1, 2, 3, 4, 5]
        assert all(r.done for r in regions)

    def test_post_after_shutdown_raises_immediately(self):
        target = WorkerTarget("gone", 1)
        target.shutdown(wait=True)
        with pytest.raises(TargetShutdownError):
            target.post(TargetRegion(lambda: None))

    def test_shutdown_without_wait_returns_fast(self):
        target = WorkerTarget("slowpool", 1)
        gate = threading.Event()
        target.post(TargetRegion(gate.wait))
        t0 = time.monotonic()
        target.shutdown(wait=False)
        assert time.monotonic() - t0 < 0.5
        gate.set()

    def test_shutdown_from_member_thread_does_not_deadlock(self):
        target = WorkerTarget("selfstop", 2)
        finished = threading.Event()

        def stop_from_inside():
            target.shutdown(wait=True)  # must skip joining itself
            finished.set()

        target.post(TargetRegion(stop_from_inside))
        assert finished.wait(timeout=5)


class TestRuntimeShutdown:
    def test_runtime_shutdown_is_idempotent(self):
        rt = PjRuntime()
        rt.create_worker("w", 1)
        rt.shutdown()
        rt.shutdown()

    def test_targets_usable_again_after_unregister(self):
        rt = PjRuntime()
        try:
            rt.create_worker("w", 1)
            rt.unregister_target("w")
            rt.create_worker("w", 2)  # same name, fresh pool
            assert rt.invoke_target_block("w", lambda: "fresh").result() == "fresh"
        finally:
            rt.shutdown(wait=False)

    def test_invoke_after_runtime_shutdown_fails_cleanly(self):
        from repro.core import UnknownTargetError

        rt = PjRuntime()
        rt.create_worker("w", 1)
        rt.shutdown()
        with pytest.raises(UnknownTargetError):
            rt.invoke_target_block("w", lambda: None)
