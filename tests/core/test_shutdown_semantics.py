"""Tests for target shutdown and backlog semantics."""

import asyncio
import threading
import time

import pytest

from repro.core import (
    EdtTarget,
    PjRuntime,
    RegionCancelledError,
    RegionFailedError,
    RegionState,
    TargetRegion,
    TargetShutdownError,
    WorkerTarget,
)


class TestWorkerShutdown:
    def test_shutdown_drains_backlog_first(self):
        """Queued regions posted before shutdown still execute (the shutdown
        sentinel queues FIFO behind them)."""
        target = WorkerTarget("drainer", 1)
        results = []
        regions = [TargetRegion(lambda i=i: results.append(i)) for i in range(6)]
        gate = threading.Event()
        target.post(TargetRegion(gate.wait))
        for r in regions:
            target.post(r)
        gate.set()
        target.shutdown(wait=True)
        assert results == [0, 1, 2, 3, 4, 5]
        assert all(r.done for r in regions)

    def test_post_after_shutdown_raises_immediately(self):
        target = WorkerTarget("gone", 1)
        target.shutdown(wait=True)
        with pytest.raises(TargetShutdownError):
            target.post(TargetRegion(lambda: None))

    def test_shutdown_without_wait_returns_fast(self):
        target = WorkerTarget("slowpool", 1)
        gate = threading.Event()
        target.post(TargetRegion(gate.wait))
        t0 = time.monotonic()
        target.shutdown(wait=False)
        assert time.monotonic() - t0 < 0.5
        gate.set()

    def test_shutdown_from_member_thread_does_not_deadlock(self):
        target = WorkerTarget("selfstop", 2)
        finished = threading.Event()

        def stop_from_inside():
            target.shutdown(wait=True)  # must skip joining itself
            finished.set()

        target.post(TargetRegion(stop_from_inside))
        assert finished.wait(timeout=5)


class TestLostWorkShutdown:
    """shutdown(wait=False) must cancel the backlog, not strand it.

    These previously deadlocked: the shutdown sentinel let worker loops exit
    while queued regions stayed PENDING forever, hanging every waiter.
    """

    def test_queued_regions_fail_waiters_instead_of_hanging(self):
        target = WorkerTarget("doomed", 1)
        gate = threading.Event()
        target.post(TargetRegion(gate.wait))  # occupy the only thread
        regions = [TargetRegion(lambda: None) for _ in range(5)]
        for r in regions:
            target.post(r)

        outcomes = []

        def waiter(r):
            try:
                r.result(timeout=10)
                outcomes.append("ok")
            except RegionFailedError:
                outcomes.append("cancelled")

        threads = [threading.Thread(target=waiter, args=(r,)) for r in regions]
        for t in threads:
            t.start()
        t0 = time.monotonic()
        target.shutdown(wait=False)
        for t in threads:
            t.join(timeout=1.0)
        elapsed = time.monotonic() - t0
        gate.set()
        assert not any(t.is_alive() for t in threads), "waiters still hung after shutdown"
        assert elapsed < 1.0
        assert outcomes == ["cancelled"] * 5
        assert all(r.state is RegionState.CANCELLED for r in regions)
        assert target.stats["cancelled_on_shutdown"] == 5

    def test_cancelled_regions_carry_shutdown_reason(self):
        target = WorkerTarget("doomed2", 1)
        gate = threading.Event()
        target.post(TargetRegion(gate.wait))
        region = TargetRegion(lambda: 1)
        target.post(region)
        target.shutdown(wait=False)
        gate.set()
        with pytest.raises(RegionCancelledError) as ei:
            region.result(timeout=1)
        assert isinstance(ei.value.cause, TargetShutdownError)

    def test_wait_tag_unblocks_with_cancellation_error(self):
        rt = PjRuntime()
        try:
            rt.create_worker("w", 1)
            gate = threading.Event()
            rt.invoke_target_block("w", gate.wait, "nowait")
            for _ in range(3):
                rt.invoke_target_block("w", lambda: None, "name_as", tag="batch")

            failures = []
            done = threading.Event()

            def joiner():
                try:
                    rt.wait_tag("batch", timeout=10)
                except RegionFailedError as exc:
                    failures.append(exc)
                finally:
                    done.set()

            threading.Thread(target=joiner).start()
            rt.shutdown(wait=False)
            gate.set()
            assert done.wait(timeout=1.0), "wait_tag still hung after shutdown"
            assert failures and isinstance(failures[0], RegionCancelledError)
        finally:
            rt.shutdown(wait=False)

    def test_await_barrier_unblocks_on_shutdown(self):
        """A thread blocked in an ``await`` logical barrier on a region that
        gets cancelled by shutdown must resume (and see the failure)."""
        rt = PjRuntime()
        try:
            rt.create_worker("pool", 1)
            gate = threading.Event()
            rt.invoke_target_block("pool", gate.wait, "nowait")

            result = []
            done = threading.Event()

            def encounter():
                try:
                    rt.invoke_target_block("pool", lambda: 1, "await", timeout=10)
                except RegionFailedError:
                    result.append("cancelled")
                finally:
                    done.set()

            threading.Thread(target=encounter).start()
            time.sleep(0.05)  # let the region queue behind the gate
            rt.shutdown(wait=False)
            gate.set()
            assert done.wait(timeout=1.0)
            assert result == ["cancelled"]
        finally:
            rt.shutdown(wait=False)

    def test_blocked_poster_released_by_shutdown(self):
        target = WorkerTarget("full", 1, queue_capacity=1, rejection_policy="block")
        gate = threading.Event()
        target.post(TargetRegion(gate.wait))
        target.post(TargetRegion(lambda: None))  # fills the bounded queue

        outcome = []
        done = threading.Event()

        def poster():
            try:
                target.post(TargetRegion(lambda: None))
            except TargetShutdownError:
                outcome.append("refused")
            finally:
                done.set()

        threading.Thread(target=poster).start()
        time.sleep(0.05)
        target.shutdown(wait=False)
        gate.set()
        assert done.wait(timeout=1.0), "poster still blocked on a dead target"
        assert outcome == ["refused"]


class TestSentinelRepost:
    def test_pumping_thread_does_not_swallow_shutdown_sentinel(self):
        """A member pumping during an ``await`` barrier must re-post the
        shutdown sentinel so the worker loop still terminates."""
        target = WorkerTarget("pumper", 1)
        pumping = threading.Event()
        release = threading.Event()

        def barrier_body():
            pumping.set()
            # The logical barrier: the pool's only thread pumps its own queue
            # while the sentinel is already enqueued.
            target.pump_until(release.is_set, poll=0.01)

        target.post(TargetRegion(barrier_body))
        assert pumping.wait(timeout=2)
        target.shutdown(wait=False)  # sentinel lands while the member pumps
        time.sleep(0.1)  # give the pumping thread a chance to (mis)handle it
        release.set()
        for t in target._threads:
            t.join(timeout=2)
        assert not any(t.is_alive() for t in target._threads), (
            "worker loop never saw the shutdown sentinel (swallowed by pump)"
        )

    def test_manual_drain_leaves_sentinel_for_loop(self):
        target = EdtTarget("manual")
        target.register_current_thread()
        ran = []
        target.post(TargetRegion(lambda: ran.append(1)))
        target.shutdown(wait=False)
        target.drain()
        # The sentinel must still be queued for a (future) run_forever.
        assert target.pending >= 1


class TestEdtShutdown:
    def test_registered_never_pumped_edt_shutdown_is_fast(self):
        """shutdown(wait=True) on a registered EDT whose loop never started
        must not stall waiting for an acknowledgement that cannot come."""
        rt = PjRuntime()
        holder = {}
        ready = threading.Event()
        release = threading.Event()

        def app_thread():
            holder["target"] = rt.register_edt("gui")
            ready.set()
            release.wait(timeout=5)  # owns the thread but never pumps

        t = threading.Thread(target=app_thread)
        t.start()
        assert ready.wait(timeout=2)
        t0 = time.monotonic()
        holder["target"].shutdown(wait=True)
        elapsed = time.monotonic() - t0
        release.set()
        t.join(timeout=2)
        assert elapsed < 1.0, f"shutdown stalled {elapsed:.1f}s on a never-started loop"

    def test_started_edt_shutdown_still_acknowledges(self):
        rt = PjRuntime()
        target = rt.start_edt("spawned")
        ran = []
        target.post(TargetRegion(lambda: ran.append(1)))
        target.shutdown(wait=True)
        assert target._stopped.wait(timeout=2)
        assert ran == [1]


class TestWaitTagPumpingGuard:
    def test_wait_tag_from_asyncio_member_raises_with_guidance(self):
        """wait_tag must apply the same supports_pumping guard as the await
        logical barrier: an asyncio loop cannot be pumped re-entrantly."""
        from repro.adapters import register_asyncio_edt
        from repro.core import RuntimeStateError

        rt = PjRuntime()
        rt.create_worker("worker", 1)

        async def main():
            register_asyncio_edt(rt, "aio")
            await asyncio.sleep(0)
            rt.invoke_target_block("worker", lambda: time.sleep(0.2), "name_as", tag="jobs")
            with pytest.raises(RuntimeStateError, match="as_future"):
                rt.wait_tag("jobs", timeout=5)

        try:
            asyncio.run(main())
        finally:
            rt.shutdown(wait=False)


class TestRuntimeShutdown:
    def test_runtime_shutdown_is_idempotent(self):
        rt = PjRuntime()
        rt.create_worker("w", 1)
        rt.shutdown()
        rt.shutdown()

    def test_targets_usable_again_after_unregister(self):
        rt = PjRuntime()
        try:
            rt.create_worker("w", 1)
            rt.unregister_target("w")
            rt.create_worker("w", 2)  # same name, fresh pool
            assert rt.invoke_target_block("w", lambda: "fresh").result() == "fresh"
        finally:
            rt.shutdown(wait=False)

    def test_invoke_after_runtime_shutdown_fails_cleanly(self):
        from repro.core import UnknownTargetError

        rt = PjRuntime()
        rt.create_worker("w", 1)
        rt.shutdown()
        with pytest.raises(UnknownTargetError):
            rt.invoke_target_block("w", lambda: None)
