"""Semantic reproduction of paper Table I: the four scheduling clauses.

Each test pins down the observable contract of one row of Table I:

==========  =====================================================
default     encountering thread waits until the block finishes
nowait      skip + no completion notification
name_as     skip + join later via wait(tag); tags are shareable
await       skip + process other events until done, then continue
==========  =====================================================
"""

import threading
import time

import pytest

from repro.core import RegionFailedError, TargetRegion


class TestDefaultClause:
    def test_blocks_until_finished(self, worker_rt):
        finished = []
        t0 = time.monotonic()
        worker_rt.invoke_target_block(
            "worker", lambda: (time.sleep(0.1), finished.append(1))
        )
        elapsed = time.monotonic() - t0
        assert finished == [1]
        assert elapsed >= 0.1

    def test_result_available_synchronously(self, worker_rt):
        h = worker_rt.invoke_target_block("worker", lambda: {"k": 1})
        assert h.result() == {"k": 1}


class TestNowaitClause:
    def test_returns_before_block_finishes(self, worker_rt):
        release = threading.Event()
        h = worker_rt.invoke_target_block("worker", release.wait, "nowait")
        assert not h.done  # still running / queued
        release.set()
        assert h.wait(timeout=2)

    def test_safe_to_ignore_handle(self, worker_rt):
        # "the code block can be safely invoked and ignored" -- broadcasting
        # interim updates must not require any join.
        hits = []
        for i in range(10):
            worker_rt.invoke_target_block("worker", lambda i=i: hits.append(i), "nowait")
        deadline = time.monotonic() + 2
        while len(hits) < 10 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert sorted(hits) == list(range(10))


class TestNameAsWaitClause:
    def test_wait_joins_all_instances_sharing_tag(self, worker_rt):
        # "different target blocks are allowed to share the same name-tag"
        done = []
        lock = threading.Lock()

        def body(i):
            time.sleep(0.01 * (i % 3))
            with lock:
                done.append(i)

        for i in range(8):
            worker_rt.invoke_target_block(
                "worker", lambda i=i: body(i), "name_as", tag="shared"
            )
        worker_rt.wait_tag("shared", timeout=5)
        assert sorted(done) == list(range(8))

    def test_wait_on_unknown_tag_is_noop_by_default(self, worker_rt):
        worker_rt.wait_tag("never-used", timeout=1)

    def test_wait_on_unknown_tag_strict(self, worker_rt):
        from repro.core import TagError

        with pytest.raises(TagError):
            worker_rt.wait_tag("never-used", strict=True)

    def test_independent_tags_do_not_interfere(self, worker_rt):
        slow_gate = threading.Event()
        worker_rt.invoke_target_block("worker", slow_gate.wait, "name_as", tag="slow")
        fast = []
        worker_rt.invoke_target_block(
            "worker", lambda: fast.append(1), "name_as", tag="fast"
        )
        worker_rt.wait_tag("fast", timeout=5)  # must not wait for "slow"
        assert fast == [1]
        slow_gate.set()
        worker_rt.wait_tag("slow", timeout=5)

    def test_wait_surfaces_group_errors(self, worker_rt):
        worker_rt.invoke_target_block("worker", lambda: 1 / 0, "name_as", tag="bad")
        with pytest.raises(RegionFailedError):
            worker_rt.wait_tag("bad", timeout=5)

    def test_wait_timeout(self, worker_rt):
        gate = threading.Event()
        worker_rt.invoke_target_block("worker", gate.wait, "name_as", tag="stuck")
        with pytest.raises(TimeoutError):
            worker_rt.wait_tag("stuck", timeout=0.05)
        gate.set()
        worker_rt.wait_tag("stuck", timeout=5)

    def test_tag_reusable_after_completion(self, worker_rt):
        worker_rt.invoke_target_block("worker", lambda: 1, "name_as", tag="t")
        worker_rt.wait_tag("t", timeout=5)
        hits = []
        worker_rt.invoke_target_block("worker", lambda: hits.append(1), "name_as", tag="t")
        worker_rt.wait_tag("t", timeout=5)
        assert hits == [1]

    def test_wait_from_edt_keeps_processing_events(self, edt_rt):
        """wait(tag) from the EDT is a logical barrier too: queued events run
        while the EDT waits for the tag group."""
        edt = edt_rt.get_target("edt")
        order = []
        done = threading.Event()

        def handler():
            edt_rt.invoke_target_block(
                "worker",
                lambda: (time.sleep(0.1), order.append("tagged"))[1],
                "name_as",
                tag="grp",
            )
            edt_rt.wait_tag("grp", timeout=5)
            order.append("after-wait")
            done.set()

        edt.post(TargetRegion(handler))
        time.sleep(0.02)
        edt.post(TargetRegion(lambda: order.append("other-event")))
        assert done.wait(timeout=5)
        assert order == ["other-event", "tagged", "after-wait"]


class TestAwaitClause:
    def test_continuation_runs_after_block(self, edt_rt):
        edt = edt_rt.get_target("edt")
        order = []
        done = threading.Event()

        def handler():
            edt_rt.invoke_target_block(
                "worker", lambda: order.append("block"), "await"
            )
            order.append("continuation")
            done.set()

        edt.post(TargetRegion(handler))
        assert done.wait(timeout=5)
        assert order == ["block", "continuation"]

    def test_edt_responsive_during_await(self, edt_rt):
        """The headline property (paper Fig. 1 / Table I): events fired while
        a handler awaits a long computation are handled promptly, not after
        the computation."""
        edt = edt_rt.get_target("edt")
        response_times = {}
        done = threading.Event()

        def long_handler():
            edt_rt.invoke_target_block("worker", lambda: time.sleep(0.3), "await")
            done.set()

        edt.post(TargetRegion(long_handler))
        time.sleep(0.02)
        fired = time.monotonic()
        edt.post(TargetRegion(lambda: response_times.update(quick=time.monotonic() - fired)))
        assert done.wait(timeout=5)
        # The quick event ran during the 0.3 s await, far sooner than 0.3 s.
        assert response_times["quick"] < 0.15
