"""Tests for the public API layer (Table II functions, run_on, decorators)."""

import threading

import pytest

from repro.core import (
    PjRuntime,
    RegionFailedError,
    TargetRegion,
    on_target,
    run_on,
    shutdown_all,
    start_edt,
    virtual_target_create_worker,
    virtual_target_register_edt,
    wait_for,
)


@pytest.fixture()
def api_rt():
    rt = PjRuntime()
    yield rt
    rt.shutdown(wait=False)


class TestTableIIFunctions:
    def test_create_worker(self, api_rt):
        t = virtual_target_create_worker("pool", 3, runtime=api_rt)
        assert api_rt.get_target("pool") is t
        assert t.max_threads == 3

    def test_register_edt_binds_caller(self, api_rt):
        result = {}

        def gui_thread():
            t = virtual_target_register_edt("edt", runtime=api_rt)
            result["contains"] = t.contains()
            t.drain()

        th = threading.Thread(target=gui_thread)
        th.start()
        th.join(timeout=5)
        assert result["contains"] is True

    def test_start_edt_headless(self, api_rt):
        t = start_edt("edt", runtime=api_rt)
        r = TargetRegion(threading.current_thread)
        t.post(r)
        assert r.result(timeout=2) is t.edt_thread

    def test_default_runtime_used_when_omitted(self):
        from repro.core import default_runtime, reset_default_runtime

        reset_default_runtime()
        try:
            virtual_target_create_worker("w", 1)
            assert default_runtime().has_target("w")
            h = run_on("w", lambda: 5)
            assert h.result() == 5
            shutdown_all(wait=False)
        finally:
            reset_default_runtime()


class TestRunOn:
    def test_args_passed_through(self, api_rt):
        virtual_target_create_worker("w", 1, runtime=api_rt)
        h = run_on("w", lambda a, b=0: a * b, 6, b=7, runtime=api_rt)
        assert h.result() == 42

    def test_condition_false_runs_inline(self, api_rt):
        virtual_target_create_worker("w", 1, runtime=api_rt)
        h = run_on(
            "w", threading.current_thread, condition=False, runtime=api_rt
        )
        assert h.result() is threading.current_thread()

    def test_condition_false_without_any_target(self, api_rt):
        # A false if-clause must work even if the named target doesn't exist:
        # the directive behaves as if absent.
        h = run_on("ghost", lambda: "inline", condition=False, runtime=api_rt)
        assert h.result() == "inline"

    def test_nowait_returns_live_handle(self, api_rt):
        virtual_target_create_worker("w", 1, runtime=api_rt)
        gate = threading.Event()
        h = run_on("w", gate.wait, mode="nowait", runtime=api_rt)
        assert not h.done
        gate.set()
        assert h.wait(timeout=2)

    def test_name_as_with_wait_for(self, api_rt):
        virtual_target_create_worker("w", 2, runtime=api_rt)
        hits = []
        for i in range(6):
            run_on("w", lambda i=i: hits.append(i), mode="name_as", tag="g", runtime=api_rt)
        wait_for("g", timeout=5, runtime=api_rt)
        assert sorted(hits) == list(range(6))


class TestOnTargetDecorator:
    def test_sync_decorator_returns_value(self, api_rt):
        virtual_target_create_worker("w", 1, runtime=api_rt)

        @on_target("w", runtime=api_rt)
        def add(a, b):
            return a + b

        assert add(2, 3) == 5

    def test_sync_decorator_raises_through(self, api_rt):
        virtual_target_create_worker("w", 1, runtime=api_rt)

        @on_target("w", runtime=api_rt)
        def boom():
            raise ValueError("inner")

        with pytest.raises(RegionFailedError) as ei:
            boom()
        assert isinstance(ei.value.cause, ValueError)

    def test_async_decorator_returns_handle(self, api_rt):
        virtual_target_create_worker("w", 1, runtime=api_rt)

        @on_target("w", mode="nowait", runtime=api_rt)
        def work(x):
            return x * 2

        h = work(21)
        assert isinstance(h, TargetRegion)
        assert h.result(timeout=2) == 42

    def test_name_as_decorator(self, api_rt):
        virtual_target_create_worker("w", 2, runtime=api_rt)
        hits = []

        @on_target("w", mode="name_as", tag="batch", runtime=api_rt)
        def record(i):
            hits.append(i)

        for i in range(4):
            record(i)
        wait_for("batch", timeout=5, runtime=api_rt)
        assert sorted(hits) == [0, 1, 2, 3]

    def test_wraps_preserves_metadata(self, api_rt):
        virtual_target_create_worker("w", 1, runtime=api_rt)

        @on_target("w", runtime=api_rt)
        def documented():
            """docstring here"""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "docstring here"
        assert documented.__wrapped__ is not None

    def test_decorated_function_runs_on_target_thread(self, api_rt):
        virtual_target_create_worker("w", 1, runtime=api_rt)

        @on_target("w", runtime=api_rt)
        def where():
            return threading.current_thread().name

        assert where().startswith("pyjama-w-")
