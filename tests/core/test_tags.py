"""Unit tests for the name_as tag registry."""

import threading

import pytest

from repro.core import RegionFailedError, TagError, TagRegistry, TargetRegion


@pytest.fixture()
def tags():
    return TagRegistry()


class TestRegistry:
    def test_outstanding_counts(self, tags):
        r1, r2 = TargetRegion(lambda: 1), TargetRegion(lambda: 2)
        tags.register("t", r1)
        tags.register("t", r2)
        assert tags.outstanding("t") == 2
        r1.run()
        assert tags.outstanding("t") == 1
        r2.run()
        assert tags.outstanding("t") == 0

    def test_known_vs_unknown(self, tags):
        assert not tags.is_known("t")
        tags.register("t", TargetRegion(lambda: 1))
        assert tags.is_known("t")

    def test_region_finished_before_register_detaches_immediately(self, tags):
        r = TargetRegion(lambda: 1)
        r.run()
        tags.register("t", r)
        assert tags.outstanding("t") == 0

    def test_cancelled_region_leaves_group(self, tags):
        r = TargetRegion(lambda: 1)
        tags.register("t", r)
        r.cancel()
        assert tags.outstanding("t") == 0
        tags.wait("t", timeout=1)  # cancellation is not an error for wait()

    def test_clear(self, tags):
        tags.register("t", TargetRegion(lambda: 1))
        tags.clear()
        assert not tags.is_known("t")
        assert tags.outstanding("t") == 0


class TestWait:
    def test_wait_returns_when_group_empties(self, tags):
        r = TargetRegion(lambda: 1)
        tags.register("t", r)
        t = threading.Timer(0.05, r.run)
        t.start()
        tags.wait("t", timeout=5)
        t.join()

    def test_wait_timeout(self, tags):
        tags.register("t", TargetRegion(lambda: 1))
        with pytest.raises(TimeoutError):
            tags.wait("t", timeout=0.02)

    def test_strict_unknown_tag(self, tags):
        with pytest.raises(TagError):
            tags.wait("ghost", strict=True)

    def test_nonstrict_unknown_tag(self, tags):
        tags.wait("ghost", timeout=1)

    def test_error_propagation(self, tags):
        r = TargetRegion(lambda: 1 / 0)
        tags.register("t", r)
        r.run()
        with pytest.raises(RegionFailedError):
            tags.wait("t", timeout=1)

    def test_errors_consumed_by_wait(self, tags):
        r = TargetRegion(lambda: 1 / 0)
        tags.register("t", r)
        r.run()
        with pytest.raises(RegionFailedError):
            tags.wait("t", timeout=1)
        tags.wait("t", timeout=1)  # second wait sees a clean group

    def test_error_suppression_flag(self, tags):
        r = TargetRegion(lambda: 1 / 0)
        tags.register("t", r)
        r.run()
        tags.wait("t", timeout=1, raise_on_error=False)

    def test_helper_wait_invokes_helper(self, tags):
        r = TargetRegion(lambda: 1)
        tags.register("t", r)
        calls = []

        def helper():
            calls.append(1)
            if len(calls) >= 3:
                r.run()
            return False

        tags.wait("t", helper=helper, timeout=5)
        assert len(calls) >= 3

    def test_helper_wait_timeout(self, tags):
        tags.register("t", TargetRegion(lambda: 1))
        with pytest.raises(TimeoutError):
            tags.wait("t", helper=lambda: False, timeout=0.05)

    def test_many_tags_concurrent(self, tags):
        regions = {f"tag{i}": [TargetRegion(lambda: i) for _ in range(3)] for i in range(5)}
        for tag, rs in regions.items():
            for r in rs:
                tags.register(tag, r)
        threads = [
            threading.Thread(target=lambda rs=rs: [r.run() for r in rs])
            for rs in regions.values()
        ]
        for t in threads:
            t.start()
        for tag in regions:
            tags.wait(tag, timeout=5)
        for t in threads:
            t.join()
        assert all(tags.outstanding(tag) == 0 for tag in regions)
