"""Contract: ``force_queue_full`` applies to *bounded* queues only.

An unbounded queue can never be full, so the fault hook must never be
consulted for one — a forced rejection there would fabricate a state the
real runtime cannot reach.  These tests pin the contract for the base
``_TargetQueue`` path (every thread-backed target) across all three
rejection policies; the asyncio adapter's mirror of the same contract is
covered in ``tests/adapters/test_asyncio_injection.py``.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import injection
from repro.core.errors import QueueFullError
from repro.core.region import TargetRegion
from repro.core.targets import EdtTarget


@pytest.fixture(autouse=True)
def _clean():
    obs.disable()
    obs.session().clear()
    injection.uninstall()
    yield
    obs.disable()
    obs.session().clear()
    injection.uninstall()


class _Hook:
    """force_queue_full hook that records every consultation."""

    def __init__(self, verdict: bool = True) -> None:
        self.verdict = verdict
        self.calls: list[str] = []

    def __call__(self, owner: str) -> bool:
        self.calls.append(owner)
        return self.verdict


class TestUnboundedNeverConsults:
    @pytest.mark.parametrize("policy", ["block", "reject", "caller_runs"])
    def test_post_succeeds_and_hook_stays_cold(self, policy):
        hook = _Hook(verdict=True)  # would force "full" if ever consulted
        injection.install(injection.InjectionHooks(force_queue_full=hook))
        target = EdtTarget("t0", rejection_policy=policy)
        region = TargetRegion(lambda: "ok", name="r1")
        target.post(region)  # must enqueue: capacity is None
        assert hook.calls == []
        assert target.work_count() == 1
        assert target.stats["posted"] == 1
        assert target.stats["rejected"] == 0
        assert target.stats["caller_runs"] == 0
        target.shutdown(wait=False)


class TestBoundedConsults:
    def test_reject_policy_forced_full(self):
        hook = _Hook(verdict=True)
        injection.install(injection.InjectionHooks(force_queue_full=hook))
        target = EdtTarget("t0", queue_capacity=4, rejection_policy="reject")
        with pytest.raises(QueueFullError):
            target.post(TargetRegion(lambda: None, name="r1"))
        assert hook.calls == ["t0"]
        assert target.work_count() == 0  # the queue had space; the fault won
        assert target.stats["rejected"] == 1
        target.shutdown(wait=False)

    def test_caller_runs_policy_forced_full(self):
        hook = _Hook(verdict=True)
        injection.install(injection.InjectionHooks(force_queue_full=hook))
        target = EdtTarget("t0", queue_capacity=4, rejection_policy="caller_runs")
        region = TargetRegion(lambda: "inline", name="r1")
        target.post(region)
        assert hook.calls == ["t0"]
        assert region.result() == "inline"  # ran in the posting thread
        assert target.stats["caller_runs"] == 1
        target.shutdown(wait=False)

    def test_block_policy_forced_full(self):
        hook = _Hook(verdict=True)
        injection.install(injection.InjectionHooks(force_queue_full=hook))
        target = EdtTarget("t0", queue_capacity=4, rejection_policy="block")
        with pytest.raises(QueueFullError):
            target.post(TargetRegion(lambda: None, name="r1"), timeout=0.05)
        assert hook.calls == ["t0"]
        target.shutdown(wait=False)

    def test_false_verdict_lets_the_post_through(self):
        hook = _Hook(verdict=False)
        injection.install(injection.InjectionHooks(force_queue_full=hook))
        target = EdtTarget("t0", queue_capacity=4, rejection_policy="reject")
        target.post(TargetRegion(lambda: None, name="r1"))
        assert hook.calls == ["t0"]  # consulted, said "not full"
        assert target.work_count() == 1
        target.shutdown(wait=False)
