"""Tests for the runtime's dispatch counters (observability)."""

import pytest

from repro.core import PjRuntime


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    runtime.create_worker("worker", 2)
    yield runtime
    runtime.shutdown(wait=False)


class TestCounters:
    def test_posted_vs_inline(self, rt):
        rt.invoke_target_block("worker", lambda: None)  # from outside: posted
        assert rt.counters["posted"] == 1
        assert rt.counters["inline"] == 0

        def nested():
            rt.invoke_target_block("worker", lambda: None)  # member: inline

        rt.invoke_target_block("worker", nested)
        assert rt.counters["inline"] == 1
        assert rt.counters["posted"] == 2

    def test_mode_tallies(self, rt):
        rt.invoke_target_block("worker", lambda: None, "default")
        rt.invoke_target_block("worker", lambda: None, "nowait").wait(2)
        rt.invoke_target_block("worker", lambda: None, "name_as", tag="t").wait(2)
        rt.invoke_target_block("worker", lambda: None, "await")
        assert rt.counters["default"] == 1
        assert rt.counters["nowait"] == 1
        assert rt.counters["name_as"] == 1
        assert rt.counters["await"] == 1

    def test_reset(self, rt):
        rt.invoke_target_block("worker", lambda: None)
        rt.reset_counters()
        assert all(v == 0 for v in rt.counters.values())

    def test_condition_false_not_counted(self, rt):
        from repro.core import run_on

        run_on("worker", lambda: None, condition=False, runtime=rt)
        assert rt.counters["posted"] == 0
        assert rt.counters["inline"] == 0
