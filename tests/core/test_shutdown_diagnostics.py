"""Shutdown observability — regression tests for two bugs:

1. ``EdtTarget.shutdown(wait=True)`` on a wedged loop (handler stuck in a
   blocking call) returned silently after the ack timeout; it now logs a
   warning carrying ``describe()`` so the stall is diagnosable.
2. ``describe()`` reported raw queue size, so an idle target whose queue
   still held a re-posted control sentinel showed ``queued=1`` forever; it
   now reports the sentinel-free :meth:`work_count`.
"""

from __future__ import annotations

import logging
import threading

from repro.core.targets import EdtTarget


def test_wedged_edt_shutdown_warns_with_diagnostics(caplog):
    t = EdtTarget("wedge")
    t._shutdown_ack_timeout = 0.2  # instance attr shadows the class default
    t.start_in_thread()
    release = threading.Event()
    entered = threading.Event()

    def stuck():
        entered.set()
        release.wait(5)

    t.post(stuck)
    assert entered.wait(2), "EDT never picked up the blocking handler"
    try:
        with caplog.at_level(logging.WARNING, logger="repro.core.targets"):
            t.shutdown(wait=True)  # must return after the ack timeout
        assert "did not acknowledge" in caplog.text
        assert "'wedge'" in caplog.text
        # The warning carries describe(): state a human can act on.
        assert "queued=" in caplog.text
        assert "alive=" in caplog.text
    finally:
        release.set()


def test_unstarted_edt_shutdown_wait_returns_immediately():
    t = EdtTarget("never-ran")
    t.register_current_thread()
    t.shutdown(wait=True)  # loop never driven: must not stall on the ack
    t._exit_member()


def test_describe_reports_sentinel_free_backlog():
    t = EdtTarget("sentinels")
    t.register_current_thread()
    try:
        t.post(lambda: None)
        t.post(lambda: None)
        t.shutdown(wait=True)  # wait=True keeps the backlog, queues _SHUTDOWN
        assert t.drain() == 2  # runs the work, re-posts the sentinel it met
        # The sentinel is still physically queued...
        assert t.pending == 1
        # ...but the honest backlog figure and the diagnostic both say idle.
        assert t.work_count() == 0
        assert "queued=0" in t.describe()
    finally:
        t._exit_member()
