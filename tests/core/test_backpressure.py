"""Tests for bounded queues, rejection policies, deadlines, and cancellation
propagation — the lifecycle & backpressure layer of the virtual-target
runtime."""

import threading
import time

import pytest

from repro.core import (
    AwaitTimeoutError,
    PjRuntime,
    QueueFullError,
    RegionCancelledError,
    RegionState,
    TargetRegion,
    WorkerTarget,
    current_region,
)


def _stalled_worker(name, capacity, policy):
    """A 1-thread target whose only thread is parked on a gate, plus the gate."""
    target = WorkerTarget(name, 1, queue_capacity=capacity, rejection_policy=policy)
    gate = threading.Event()
    started = threading.Event()
    target.post(TargetRegion(lambda: (started.set(), gate.wait())))
    started.wait(timeout=2)
    return target, gate


class TestRejectionPolicies:
    def test_reject_raises_queue_full(self):
        target, gate = _stalled_worker("rej", 2, "reject")
        try:
            target.post(TargetRegion(lambda: None))
            target.post(TargetRegion(lambda: None))
            with pytest.raises(QueueFullError) as ei:
                target.post(TargetRegion(lambda: None))
            assert ei.value.capacity == 2
            assert target.stats["rejected"] == 1
        finally:
            gate.set()
            target.shutdown(wait=False)

    def test_block_waits_for_space(self):
        target, gate = _stalled_worker("blk", 1, "block")
        try:
            target.post(TargetRegion(lambda: None))
            posted = threading.Event()

            def poster():
                target.post(TargetRegion(lambda: None))  # must park: queue full
                posted.set()

            threading.Thread(target=poster).start()
            assert not posted.wait(timeout=0.15), "post should have blocked on a full queue"
            gate.set()  # worker drains, freeing a slot
            assert posted.wait(timeout=2), "blocked post never resumed"
        finally:
            gate.set()
            target.shutdown(wait=False)

    def test_block_with_timeout_raises_queue_full(self):
        target, gate = _stalled_worker("blkto", 1, "block")
        try:
            target.post(TargetRegion(lambda: None))
            t0 = time.monotonic()
            with pytest.raises(QueueFullError):
                target.post(TargetRegion(lambda: None), timeout=0.1)
            assert 0.05 < time.monotonic() - t0 < 1.0
        finally:
            gate.set()
            target.shutdown(wait=False)

    def test_caller_runs_executes_in_posting_thread(self):
        target, gate = _stalled_worker("cr", 1, "caller_runs")
        try:
            target.post(TargetRegion(lambda: None))
            ran_in = []
            region = TargetRegion(lambda: ran_in.append(threading.current_thread()))
            target.post(region)  # full queue -> runs here, synchronously
            assert region.state is RegionState.COMPLETED
            assert ran_in == [threading.current_thread()]
            assert target.stats["caller_runs"] == 1
        finally:
            gate.set()
            target.shutdown(wait=False)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="rejection policy"):
            WorkerTarget("bad", 1, rejection_policy="drop_oldest")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            WorkerTarget("bad", 1, queue_capacity=0)


class TestTelemetry:
    def test_high_water_mark_tracks_deepest_backlog(self):
        target, gate = _stalled_worker("hwm", None, "block")
        try:
            for _ in range(4):
                target.post(TargetRegion(lambda: None))
            assert target.high_water_mark >= 4
            gate.set()
            target.shutdown(wait=True)
            assert target.stats["high_water"] >= 4
            assert target.stats["posted"] == 5
        finally:
            gate.set()
            target.shutdown(wait=False)

    def test_describe_mentions_depth_and_members(self):
        target = WorkerTarget("desc", 2, queue_capacity=7)
        try:
            text = target.describe()
            assert "desc" in text and "capacity=7" in text and "pyjama-desc-0" in text
        finally:
            target.shutdown(wait=False)


class TestQueueCapacityICV:
    def test_create_worker_inherits_icv(self):
        rt = PjRuntime()
        rt.queue_capacity_var = 3
        rt.rejection_policy_var = "reject"
        try:
            target = rt.create_worker("w", 1)
            assert target.queue_capacity == 3
            assert target.rejection_policy == "reject"
        finally:
            rt.shutdown(wait=False)

    def test_explicit_arguments_beat_icv(self):
        rt = PjRuntime()
        rt.queue_capacity_var = 3
        try:
            target = rt.create_worker("w", 1, queue_capacity=9, rejection_policy="caller_runs")
            assert target.queue_capacity == 9
            assert target.rejection_policy == "caller_runs"
        finally:
            rt.shutdown(wait=False)

    def test_start_edt_inherits_icv(self):
        rt = PjRuntime()
        rt.queue_capacity_var = 5
        try:
            target = rt.start_edt("edt")
            assert target.queue_capacity == 5
        finally:
            rt.shutdown(wait=False)


class TestDeadlines:
    def test_default_wait_times_out_with_diagnostics(self):
        rt = PjRuntime()
        try:
            rt.create_worker("w", 1)
            gate = threading.Event()
            rt.invoke_target_block("w", gate.wait, "nowait")
            with pytest.raises(AwaitTimeoutError) as ei:
                rt.invoke_target_block("w", lambda: 1, timeout=0.2)
            assert "runtime diagnostics" in str(ei.value)
            assert "queued=" in ei.value.diagnostics
            gate.set()
        finally:
            rt.shutdown(wait=False)

    def test_timed_out_region_is_withdrawn_if_still_queued(self):
        rt = PjRuntime()
        try:
            rt.create_worker("w", 1)
            gate = threading.Event()
            rt.invoke_target_block("w", gate.wait, "nowait")
            region = TargetRegion(lambda: 1)
            with pytest.raises(AwaitTimeoutError, match="withdrawn"):
                rt.invoke_target_block("w", region, timeout=0.2)
            assert region.state is RegionState.CANCELLED
            gate.set()
        finally:
            rt.shutdown(wait=False)

    def test_await_barrier_times_out_while_pumping(self):
        rt = PjRuntime()
        try:
            rt.create_worker("pool", 1)
            rt.create_worker("busy", 1)
            gate = threading.Event()
            outcome = []
            done = threading.Event()

            def member_body():
                # Encounter an await on *another* (stalled) target from inside
                # the pool: the member pumps its own queue while waiting, and
                # the barrier watchdog must still fire.
                try:
                    rt.invoke_target_block("busy", gate.wait, "await", timeout=0.3)
                except AwaitTimeoutError as exc:
                    outcome.append(exc)
                finally:
                    done.set()

            rt.invoke_target_block("pool", member_body, "nowait")
            assert done.wait(timeout=5)
            assert outcome, "await barrier never hit its deadline"
            assert "await" in str(outcome[0])
            gate.set()
        finally:
            rt.shutdown(wait=False)

    def test_default_timeout_icv_applies(self):
        rt = PjRuntime()
        rt.default_timeout_var = 0.2
        try:
            rt.create_worker("w", 1)
            gate = threading.Event()
            rt.invoke_target_block("w", gate.wait, "nowait")
            with pytest.raises(AwaitTimeoutError):
                rt.invoke_target_block("w", lambda: 1)
            gate.set()
        finally:
            rt.shutdown(wait=False)

    def test_compiled_timeout_clause_reaches_runtime(self):
        """End to end: a ``timeout(...)`` pragma must flow through the
        compiler bridge and actually arm the deadline."""
        from repro.compiler import exec_omp

        rt = PjRuntime()
        try:
            rt.create_worker("w", 1)
            gate = threading.Event()
            rt.invoke_target_block("w", gate.wait, "nowait")
            ns = exec_omp(
                "def quick():\n"
                "    #omp target virtual(w) timeout(0.2)\n"
                "    y = 1\n"
                "    return y\n",
                runtime=rt,
            )
            with pytest.raises(AwaitTimeoutError):
                ns["quick"]()
            gate.set()
        finally:
            rt.shutdown(wait=False)

    def test_pump_until_deadline(self):
        target = WorkerTarget("pu", 1)
        try:
            hit = []
            done = threading.Event()

            def body():
                try:
                    target.pump_until(lambda: False, poll=0.01, timeout=0.2)
                except AwaitTimeoutError as exc:
                    hit.append(exc)
                finally:
                    done.set()

            target.post(TargetRegion(body))
            assert done.wait(timeout=5)
            assert hit and "deadline" in str(hit[0])
        finally:
            target.shutdown(wait=False)


class TestCancellationPropagation:
    def test_invoke_honours_already_cancelled_region(self):
        rt = PjRuntime()
        try:
            target = rt.create_worker("w", 1)
            region = TargetRegion(lambda: 1)
            region.cancel()
            with pytest.raises(RegionCancelledError):
                rt.invoke_target_block("w", region)
            # Fire-and-forget: returns the dead handle without posting.
            region2 = TargetRegion(lambda: 1)
            region2.cancel()
            assert rt.invoke_target_block("w", region2, "nowait") is region2
            assert target.stats["posted"] == 0
        finally:
            rt.shutdown(wait=False)

    def test_cancel_token_polled_by_running_body(self):
        rt = PjRuntime()
        try:
            rt.create_worker("w", 1)
            started = threading.Event()
            stopped = threading.Event()

            def body():
                started.set()
                while not current_region().cancel_token.cancelled:
                    time.sleep(0.01)
                stopped.set()

            handle = rt.invoke_target_block("w", body, "nowait")
            assert started.wait(timeout=2)
            assert not handle.request_cancel()  # running: cooperative only
            assert stopped.wait(timeout=2), "body never observed the cancel token"
            handle.wait(timeout=2)
            assert handle.state is RegionState.COMPLETED
        finally:
            rt.shutdown(wait=False)

    def test_cancel_token_wait_and_raise_helpers(self):
        region = TargetRegion(lambda: None)
        assert not region.cancel_token.cancelled
        region.cancel_token.set()
        assert region.cancel_token.wait(timeout=0)
        with pytest.raises(RuntimeError, match="cancellation request"):
            region.cancel_token.raise_if_cancelled()
