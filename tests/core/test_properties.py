"""Property-based tests (hypothesis) for core invariants.

These pin down the invariants the paper's runtime silently relies on:
exactly-once region execution, lossless dispatch, tag-group conservation,
and FIFO ordering on single-threaded targets.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EdtTarget, PjRuntime, SchedulingMode, TagRegistry, TargetRegion


# Keep thread churn bounded: hypothesis runs each property many times.
FAST = settings(max_examples=25, deadline=None)


class TestRegionProperties:
    @given(st.integers(min_value=1, max_value=24))
    @FAST
    def test_concurrent_run_executes_exactly_once(self, racers):
        """No matter how many threads race run(), the body runs once."""
        calls = []
        lock = threading.Lock()

        def body():
            with lock:
                calls.append(1)

        region = TargetRegion(body)
        barrier = threading.Barrier(racers)

        def racer():
            barrier.wait()
            region.run()

        threads = [threading.Thread(target=racer) for _ in range(racers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert calls == [1]

    @given(st.lists(st.integers(), min_size=0, max_size=30))
    @FAST
    def test_result_is_body_return_value(self, payload):
        region = TargetRegion(lambda: list(payload))
        region.run()
        assert region.result() == payload

    @given(st.integers(min_value=0, max_value=10))
    @FAST
    def test_all_callbacks_fire(self, n_callbacks):
        region = TargetRegion(lambda: None)
        seen = []
        for i in range(n_callbacks):
            region.add_done_callback(lambda _r, i=i: seen.append(i))
        region.run()
        assert seen == list(range(n_callbacks))


class TestDispatchProperties:
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=4))
    @FAST
    def test_no_region_lost(self, n_regions, n_threads):
        """Every posted region completes: the queue never drops work."""
        rt = PjRuntime()
        try:
            rt.create_worker("w", n_threads)
            results = []
            lock = threading.Lock()

            def body(i):
                with lock:
                    results.append(i)

            handles = [
                rt.invoke_target_block("w", lambda i=i: body(i), "nowait")
                for i in range(n_regions)
            ]
            for h in handles:
                assert h.wait(timeout=10)
            assert sorted(results) == list(range(n_regions))
        finally:
            rt.shutdown(wait=False)

    @given(st.lists(st.integers(), min_size=1, max_size=50))
    @FAST
    def test_edt_preserves_fifo_order(self, items):
        """A single-threaded target dispatches in post order."""
        edt = EdtTarget("fifo")
        edt.register_current_thread()
        try:
            seen = []
            for x in items:
                edt.post(lambda x=x: seen.append(x))
            edt.drain()
            assert seen == items
        finally:
            edt._exit_member()

    @given(
        st.lists(
            st.sampled_from(["default", "nowait", "await"]), min_size=1, max_size=12
        )
    )
    @FAST
    def test_mixed_modes_all_complete(self, modes):
        rt = PjRuntime()
        try:
            rt.create_worker("w", 2)
            handles = [
                rt.invoke_target_block("w", lambda: None, SchedulingMode(m))
                for m in modes
            ]
            for h in handles:
                assert h.wait(timeout=10)
        finally:
            rt.shutdown(wait=False)


class TestTagProperties:
    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=0, max_value=8),
            min_size=1,
        )
    )
    @FAST
    def test_tag_group_conservation(self, groups):
        """outstanding(tag) equals registered-minus-finished at every point."""
        tags = TagRegistry()
        regions = {
            tag: [TargetRegion(lambda: None) for _ in range(n)]
            for tag, n in groups.items()
        }
        for tag, rs in regions.items():
            for r in rs:
                tags.register(tag, r)
        for tag, n in groups.items():
            assert tags.outstanding(tag) == n
        for tag, rs in regions.items():
            for i, r in enumerate(rs):
                r.run()
                assert tags.outstanding(tag) == len(rs) - i - 1

    @given(st.integers(min_value=0, max_value=20))
    @FAST
    def test_wait_after_all_done_never_blocks(self, n):
        tags = TagRegistry()
        for _ in range(n):
            r = TargetRegion(lambda: None)
            tags.register("t", r)
            r.run()
        tags.wait("t", timeout=1)
