"""Tests for PjRuntime and Algorithm 1 (invoke_target_block)."""

import threading
import time

import pytest

from repro.core import (
    PjRuntime,
    RegionFailedError,
    RuntimeStateError,
    SchedulingMode,
    TargetDirective,
    TargetExistsError,
    TargetProperty,
    TargetRegion,
    UnknownTargetError,
)


class TestRegistry:
    def test_create_worker_registers(self, rt):
        rt.create_worker("w", 2)
        assert rt.has_target("w")
        assert rt.get_target("w").max_threads == 2

    def test_duplicate_name_rejected(self, rt):
        rt.create_worker("w", 1)
        with pytest.raises(TargetExistsError):
            rt.create_worker("w", 1)

    def test_duplicate_worker_is_shut_down_on_rejection(self, rt):
        rt.create_worker("w", 1)
        before = threading.active_count()
        with pytest.raises(TargetExistsError):
            rt.create_worker("w", 4)
        # The rejected pool must not leak its threads forever.
        deadline = time.monotonic() + 2
        while threading.active_count() > before and time.monotonic() < deadline:
            time.sleep(0.01)
        assert threading.active_count() <= before

    def test_unknown_target(self, rt):
        with pytest.raises(UnknownTargetError):
            rt.get_target("nope")

    def test_first_target_becomes_default(self, rt):
        rt.create_worker("first", 1)
        rt.create_worker("second", 1)
        assert rt.default_target_var == "first"
        h = rt.invoke_target_block(None, lambda: "on-default")
        assert h.result() == "on-default"

    def test_unregister(self, rt):
        rt.create_worker("w", 1)
        rt.unregister_target("w")
        assert not rt.has_target("w")
        assert rt.default_target_var is None

    def test_target_names_sorted(self, rt):
        rt.create_worker("zeta", 1)
        rt.create_worker("alpha", 1)
        assert rt.target_names() == ["alpha", "zeta"]

    def test_register_edt_binds_calling_thread(self, rt):
        t = rt.register_edt("gui")
        assert t.contains()
        t._exit_member()

    def test_no_targets_no_default(self, rt):
        with pytest.raises(UnknownTargetError):
            rt.invoke_target_block(None, lambda: 1)


class TestAlgorithm1:
    """Each test is one path through the paper's Algorithm 1."""

    def test_line7_inline_when_member(self, worker_rt):
        # if T in E then B.exec() -- the region runs synchronously in T.
        def outer():
            inner_thread = []
            worker_rt.invoke_target_block(
                "worker", lambda: inner_thread.append(threading.current_thread())
            )
            return inner_thread[0], threading.current_thread()

        inner, outer_thread = worker_rt.invoke_target_block("worker", outer).result()
        assert inner is outer_thread

    def test_line8_posts_when_not_member(self, worker_rt):
        h = worker_rt.invoke_target_block("worker", threading.current_thread, "nowait")
        assert h.result(timeout=2) is not threading.current_thread()

    def test_lines10_12_nowait_returns_immediately(self, worker_rt):
        gate = threading.Event()
        t0 = time.monotonic()
        h = worker_rt.invoke_target_block("worker", gate.wait, "nowait")
        assert time.monotonic() - t0 < 0.5
        assert not h.done
        gate.set()
        h.wait(timeout=2)

    def test_line17_default_waits(self, worker_rt):
        done = []
        h = worker_rt.invoke_target_block(
            "worker", lambda: (time.sleep(0.05), done.append(1))[1]
        )
        # After return, the block has already finished.
        assert h.done
        assert done == [1]

    def test_default_reraises_body_exception(self, worker_rt):
        with pytest.raises(RegionFailedError) as ei:
            worker_rt.invoke_target_block("worker", lambda: 1 / 0)
        assert isinstance(ei.value.cause, ZeroDivisionError)

    def test_inline_path_reraises_for_waiting_modes(self, worker_rt):
        def outer():
            worker_rt.invoke_target_block("worker", lambda: 1 / 0)  # inline

        with pytest.raises(RegionFailedError):
            worker_rt.invoke_target_block("worker", outer).result()

    def test_nowait_does_not_raise_into_caller(self, worker_rt):
        h = worker_rt.invoke_target_block("worker", lambda: 1 / 0, "nowait")
        h.wait(timeout=2)  # failure is observable on the handle only
        with pytest.raises(RegionFailedError):
            h.result()

    def test_mode_accepts_strings_and_enums(self, worker_rt):
        for mode in ("default", SchedulingMode.DEFAULT):
            h = worker_rt.invoke_target_block("worker", lambda: 3, mode)
            assert h.result() == 3

    def test_name_as_requires_tag(self, worker_rt):
        with pytest.raises(RuntimeStateError):
            worker_rt.invoke_target_block("worker", lambda: 1, "name_as")

    def test_callable_auto_wrapped_in_region(self, worker_rt):
        h = worker_rt.invoke_target_block("worker", lambda: 11)
        assert isinstance(h, TargetRegion)
        assert h.result() == 11


class TestAwait:
    def test_await_without_membership_degrades_to_wait(self, worker_rt):
        # The encountering (test) thread belongs to no target: blocking wait.
        h = worker_rt.invoke_target_block("worker", lambda: 9, "await")
        assert h.done
        assert h.result() == 9

    def test_strict_await_raises_without_membership(self, worker_rt):
        worker_rt.strict_await_var = True
        with pytest.raises(RuntimeStateError):
            worker_rt.invoke_target_block("worker", lambda: 9, "await")

    def test_await_processes_other_events(self, edt_rt):
        """The logical barrier: while the EDT awaits an offloaded block, other
        events posted to the EDT run *before* the continuation (paper Table I
        and Algorithm 1 lines 13-16)."""
        edt = edt_rt.get_target("edt")
        order = []
        handler_done = threading.Event()

        def handler():
            def offloaded():
                time.sleep(0.1)
                order.append("offloaded")

            edt_rt.invoke_target_block("worker", offloaded, "await")
            order.append("continuation")
            handler_done.set()

        edt.post(TargetRegion(handler))
        time.sleep(0.02)
        edt.post(TargetRegion(lambda: order.append("other-event")))
        assert handler_done.wait(timeout=5)
        assert order == ["other-event", "offloaded", "continuation"]

    def test_nested_await(self, edt_rt):
        """An event processed during an await may itself await (re-entrant
        logical barrier)."""
        edt = edt_rt.get_target("edt")
        order = []
        done = threading.Event()

        def inner_handler():
            edt_rt.invoke_target_block(
                "worker", lambda: (time.sleep(0.02), order.append("inner-off"))[1], "await"
            )
            order.append("inner-cont")

        def outer_handler():
            edt.post(TargetRegion(inner_handler))
            edt_rt.invoke_target_block(
                "worker", lambda: (time.sleep(0.15), order.append("outer-off"))[1], "await"
            )
            order.append("outer-cont")
            done.set()

        edt.post(TargetRegion(outer_handler))
        assert done.wait(timeout=5)
        assert order == ["inner-off", "inner-cont", "outer-off", "outer-cont"]

    def test_await_reraises_body_exception(self, edt_rt):
        edt = edt_rt.get_target("edt")
        result = []

        def handler():
            try:
                edt_rt.invoke_target_block("worker", lambda: 1 / 0, "await")
            except RegionFailedError as e:
                result.append(type(e.cause))

        edt.post(TargetRegion(handler))
        deadline = time.monotonic() + 5
        while not result and time.monotonic() < deadline:
            time.sleep(0.01)
        assert result == [ZeroDivisionError]

    def test_worker_thread_awaits_edt_block(self, edt_rt):
        """A pool member that awaits a block on another target keeps draining
        its own pool queue meanwhile."""
        order = []
        done = threading.Event()

        def worker_handler():
            def on_edt():
                time.sleep(0.08)
                order.append("edt-part")

            edt_rt.invoke_target_block("edt", on_edt, "await")
            order.append("worker-cont")
            done.set()

        edt_rt.invoke_target_block("worker", worker_handler, "nowait")
        time.sleep(0.02)
        # Other pool work should proceed during the worker's await.
        edt_rt.invoke_target_block("worker", lambda: order.append("other-work"), "nowait")
        assert done.wait(timeout=5)
        assert order.index("other-work") < order.index("worker-cont")
        assert order.index("edt-part") < order.index("worker-cont")


class TestExecuteDirective:
    def test_directive_dispatch(self, worker_rt):
        d = TargetDirective(target=TargetProperty.virtual("worker"))
        h = worker_rt.execute_directive(d, lambda: "via-directive")
        assert h.result() == "via-directive"

    def test_false_if_clause_runs_inline(self, worker_rt):
        d = TargetDirective(target=TargetProperty.virtual("worker"))
        h = worker_rt.execute_directive(
            d, threading.current_thread, condition=False
        )
        assert h.result() is threading.current_thread()

    def test_device_target_unsupported(self, worker_rt):
        d = TargetDirective(target=TargetProperty.device(0))
        with pytest.raises(RuntimeStateError):
            worker_rt.execute_directive(d, lambda: None)

    def test_name_as_directive_joins_by_tag(self, worker_rt):
        d = TargetDirective(
            target=TargetProperty.virtual("worker"),
            mode=SchedulingMode.NAME_AS,
            tag="grp",
        )
        counter = []
        for _ in range(4):
            worker_rt.execute_directive(d, lambda: counter.append(1))
        worker_rt.wait_tag("grp", timeout=5)
        assert len(counter) == 4


class TestShutdown:
    def test_shutdown_clears_registry(self):
        rt = PjRuntime()
        rt.create_worker("a", 1)
        rt.start_edt("b")
        rt.shutdown()
        assert rt.target_names() == []
        assert rt.default_target_var is None

    def test_default_runtime_reset(self):
        from repro.core import default_runtime, reset_default_runtime

        rt1 = default_runtime()
        rt1.create_worker("tmp", 1)
        reset_default_runtime()
        rt2 = default_runtime()
        assert rt2 is not rt1
        assert not rt2.has_target("tmp")
        reset_default_runtime()
