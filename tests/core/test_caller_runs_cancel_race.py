"""The caller_runs/cancel race: a cancelled region must never be handed to
the rejection path or have ``run()`` invoked on it.

Two windows existed in ``VirtualTarget.post``'s ``caller_runs`` branch:

* cancel lands *before* the post reaches the full-queue verdict — the old
  code still bumped the ``caller_runs`` stat, emitted a ``REJECT`` event
  and dispatched the corpse;
* cancel lands while the item sits in the queue — dispatch must discard
  the corpse without calling ``run()`` at all, traced or not.

The deterministic interleaving explorer pins the full schedule tree of
this race (``repro explore --workload caller-runs-cancel``); these tests
pin the two windows directly so the contract survives without running the
explorer.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import injection
from repro.core.targets import EdtTarget
from repro.explore import SensorRegion
from repro.obs.events import EventKind


@pytest.fixture(autouse=True)
def _clean():
    obs.disable()
    obs.session().clear()
    injection.uninstall()
    yield
    obs.disable()
    obs.session().clear()
    injection.uninstall()


def _full_caller_runs_target() -> tuple[EdtTarget, SensorRegion]:
    """A capacity-1 caller_runs target whose queue is already full."""
    target = EdtTarget("t0", queue_capacity=1, rejection_policy="caller_runs")
    target.post(SensorRegion(lambda: "blocker", name="blocker"))
    return target, SensorRegion(lambda: "r1", name="r1")


class TestCancelBeforeVerdict:
    def test_corpse_is_dropped_silently(self):
        target, region = _full_caller_runs_target()
        region.cancel()
        session = obs.enable()
        target.post(region)  # full queue + caller_runs + corpse: no-op
        obs.disable()
        assert region.late_runs == 0
        assert target.stats["caller_runs"] == 0
        kinds = [(e.kind, e.name) for e in session.events()]
        assert (EventKind.REJECT, "r1") not in kinds
        target.shutdown(wait=False)

    def test_cancel_inside_the_seam_window(self):
        # The exact interleaving of the bug: the cancel lands after the
        # poster crossed the injection seam but before the full-queue
        # verdict.  The decision hook runs at that seam, so firing the
        # cancel from it reproduces the window deterministically.
        target, region = _full_caller_runs_target()

        def cancel_at_seam(point: str, name: str) -> None:
            if point == "post" and not region.done:
                region.cancel()

        injection.install(injection.InjectionHooks(decision=cancel_at_seam))
        session = obs.enable()
        target.post(region)
        obs.disable()
        injection.uninstall()
        assert region.done
        assert region.late_runs == 0
        assert target.stats["caller_runs"] == 0
        kinds = [(e.kind, e.name) for e in session.events()]
        assert (EventKind.REJECT, "r1") not in kinds
        target.shutdown(wait=False)

    def test_live_region_still_takes_caller_runs(self):
        target, region = _full_caller_runs_target()
        session = obs.enable()
        target.post(region)  # full queue, live region: runs in this thread
        obs.disable()
        assert region.done
        assert region.result() == "r1"
        assert region.late_runs == 0
        assert target.stats["caller_runs"] == 1
        rejects = [e for e in session.events()
                   if e.kind is EventKind.REJECT and e.name == "r1"]
        assert len(rejects) == 1 and rejects[0].arg == "caller_runs"
        target.shutdown(wait=False)


class TestCorpseAtDispatch:
    @pytest.mark.parametrize("traced", [False, True])
    def test_dequeued_corpse_is_never_run(self, traced):
        # The discard must not depend on whether tracing is on: pre-fix the
        # corpse check lived inside the tracing branch only.
        target = EdtTarget("t0")
        region = SensorRegion(lambda: "r1", name="r1")
        session = obs.enable() if traced else None
        target.post(region)
        region.cancel()
        assert target.process_one(timeout=0)  # dequeues the corpse
        if traced:
            obs.disable()
        assert region.late_runs == 0
        assert target.work_count() == 0
        if traced:
            # The dequeue itself is still on the record: every ENQUEUE must
            # resolve, and discard-at-dispatch is how this one did.
            kinds = [e.kind for e in session.events() if e.name == "r1"]
            assert EventKind.DEQUEUE in kinds
            assert EventKind.EXEC_BEGIN not in kinds
        target.shutdown(wait=False)
