"""Unit tests for virtual targets: WorkerTarget and EdtTarget."""

import threading
import time

import pytest

from repro.core import (
    EdtTarget,
    RuntimeStateError,
    TargetRegion,
    TargetShutdownError,
    WorkerTarget,
    current_target,
)


@pytest.fixture()
def worker():
    t = WorkerTarget("w", 3)
    yield t
    t.shutdown(wait=False)


@pytest.fixture()
def edt():
    t = EdtTarget("e")
    t.start_in_thread()
    yield t
    t.shutdown(wait=False)


class TestWorkerTarget:
    def test_pool_size(self, worker):
        deadline = time.monotonic() + 2
        while worker.member_count < 3 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert worker.member_count == 3

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            WorkerTarget("w", 0)

    def test_executes_posted_region(self, worker):
        r = TargetRegion(lambda: threading.current_thread().name)
        worker.post(r)
        assert r.result(timeout=2).startswith("pyjama-w-")

    def test_executes_plain_callable(self, worker):
        done = threading.Event()
        worker.post(done.set)
        assert done.wait(timeout=2)

    def test_contains_member_thread(self, worker):
        r = TargetRegion(lambda: worker.contains())
        worker.post(r)
        assert r.result(timeout=2) is True
        assert not worker.contains()  # the test thread is not a member

    def test_current_target_set_inside_pool(self, worker):
        r = TargetRegion(current_target)
        worker.post(r)
        assert r.result(timeout=2) is worker

    def test_parallel_execution_uses_multiple_threads(self, worker):
        barrier = threading.Barrier(3, timeout=2)
        names = []
        lock = threading.Lock()

        def body():
            barrier.wait()
            with lock:
                names.append(threading.current_thread().name)

        regions = [TargetRegion(body) for _ in range(3)]
        for r in regions:
            worker.post(r)
        for r in regions:
            r.result(timeout=2)
        assert len(set(names)) == 3

    def test_post_after_shutdown_raises(self, worker):
        worker.shutdown()
        with pytest.raises(TargetShutdownError):
            worker.post(TargetRegion(lambda: None))

    def test_shutdown_joins_threads(self):
        t = WorkerTarget("w2", 2)
        t.shutdown(wait=True)
        assert t.member_count == 0
        assert not t.alive

    def test_shutdown_idempotent(self, worker):
        worker.shutdown()
        worker.shutdown()  # no error

    def test_exception_in_region_does_not_kill_pool(self, worker):
        bad = TargetRegion(lambda: 1 / 0)
        worker.post(bad)
        bad.wait(timeout=2)
        good = TargetRegion(lambda: "still alive")
        worker.post(good)
        assert good.result(timeout=2) == "still alive"


class TestEdtTarget:
    def test_single_member(self, edt):
        assert edt.member_count == 1
        assert edt.edt_thread is not None
        assert edt.edt_thread.name == "pyjama-edt-e"

    def test_all_regions_run_on_same_thread(self, edt):
        regions = [TargetRegion(lambda: threading.current_thread()) for _ in range(5)]
        for r in regions:
            edt.post(r)
        threads = {r.result(timeout=2) for r in regions}
        assert threads == {edt.edt_thread}

    def test_register_current_thread(self):
        t = EdtTarget("manual")
        t.register_current_thread()
        assert t.contains()
        assert current_target() is t
        r = TargetRegion(lambda: 5)
        t.post(r)
        assert t.drain() == 1
        assert r.result() == 5
        t._exit_member()

    def test_double_bind_rejected(self, edt):
        with pytest.raises(RuntimeStateError):
            edt.register_current_thread()
        with pytest.raises(RuntimeStateError):
            edt.start_in_thread()

    def test_run_forever_requires_edt_thread(self, edt):
        with pytest.raises(RuntimeStateError):
            edt.run_forever()

    def test_fifo_ordering(self, edt):
        seen = []
        done = threading.Event()
        for i in range(10):
            edt.post(lambda i=i: seen.append(i))
        edt.post(done.set)
        assert done.wait(timeout=2)
        assert seen == list(range(10))


class TestPumping:
    def test_process_one_timeout_on_empty(self, worker):
        # The test thread may pump a foreign queue explicitly (used by
        # eventloop helpers); empty queue -> False after timeout.
        assert worker.process_one(timeout=0.01) is False

    def test_wakeup_does_not_count_as_work(self):
        t = EdtTarget("pump")
        t.register_current_thread()
        t.wakeup()
        assert t.process_one(timeout=0.01) is False
        t._exit_member()

    def test_pump_until_requires_membership(self, worker):
        with pytest.raises(RuntimeStateError):
            worker.pump_until(lambda: True)

    def test_pump_until_processes_work(self):
        t = EdtTarget("pump2")
        t.register_current_thread()
        seen = []
        t.post(lambda: seen.append(1))
        t.post(lambda: seen.append(2))
        t.pump_until(lambda: len(seen) == 2, poll=0.01)
        assert seen == [1, 2]
        t._exit_member()

    def test_drain_counts_only_real_items(self):
        t = EdtTarget("drain")
        t.register_current_thread()
        t.post(lambda: None)
        t.wakeup()
        t.post(lambda: None)
        assert t.drain() == 2
        t._exit_member()

    def test_pending_reflects_queue(self, worker):
        # Block the whole pool, then measure queued backlog.
        gate = threading.Event()
        for _ in range(3):
            worker.post(gate.wait)
        time.sleep(0.05)
        for _ in range(4):
            worker.post(lambda: None)
        assert worker.pending >= 4
        gate.set()
