"""Unit tests for TargetRegion: the liftable unit of work (paper §IV-A)."""

import threading

import pytest

from repro.core import RegionFailedError, RegionState, TargetRegion


class TestLifecycle:
    def test_initial_state(self):
        r = TargetRegion(lambda: None)
        assert r.state is RegionState.PENDING
        assert not r.done
        assert r.exception is None

    def test_run_completes(self):
        r = TargetRegion(lambda: 7)
        r.run()
        assert r.state is RegionState.COMPLETED
        assert r.done
        assert r.result() == 7

    def test_args_kwargs_forwarded(self):
        r = TargetRegion(lambda a, b, c=0: a + b + c, 1, 2, c=3)
        r.run()
        assert r.result() == 6

    def test_run_is_one_shot(self):
        calls = []
        r = TargetRegion(lambda: calls.append(1))
        r.run()
        r.run()
        assert calls == [1]

    def test_failure_recorded_and_reraised(self):
        r = TargetRegion(lambda: 1 / 0)
        r.run()
        assert r.state is RegionState.FAILED
        assert isinstance(r.exception, ZeroDivisionError)
        with pytest.raises(RegionFailedError) as ei:
            r.result()
        assert isinstance(ei.value.cause, ZeroDivisionError)
        assert ei.value.__cause__ is ei.value.cause

    def test_generated_names_are_unique(self):
        a, b = TargetRegion(lambda: None), TargetRegion(lambda: None)
        assert a.name != b.name
        assert a.name.startswith("TargetRegion_")

    def test_explicit_name(self):
        r = TargetRegion(lambda: None, name="TargetRegion_hello")
        assert r.name == "TargetRegion_hello"
        assert "TargetRegion_hello" in repr(r)


class TestCancel:
    def test_cancel_pending(self):
        r = TargetRegion(lambda: 1)
        assert r.cancel()
        assert r.state is RegionState.CANCELLED
        assert r.done
        with pytest.raises(RegionFailedError):
            r.result()

    def test_cancelled_region_does_not_run(self):
        calls = []
        r = TargetRegion(lambda: calls.append(1))
        r.cancel()
        r.run()
        assert calls == []

    def test_cannot_cancel_finished(self):
        r = TargetRegion(lambda: 1)
        r.run()
        assert not r.cancel()
        assert r.state is RegionState.COMPLETED

    def test_cancel_fires_callbacks(self):
        seen = []
        r = TargetRegion(lambda: 1)
        r.add_done_callback(seen.append)
        r.cancel()
        assert seen == [r]


class TestWaitAndCallbacks:
    def test_wait_timeout(self):
        r = TargetRegion(lambda: 1)
        assert not r.wait(timeout=0.01)

    def test_result_timeout(self):
        r = TargetRegion(lambda: 1)
        with pytest.raises(TimeoutError):
            r.result(timeout=0.01)

    def test_wait_from_other_thread(self):
        r = TargetRegion(lambda: "value")
        t = threading.Thread(target=r.run)
        t.start()
        assert r.wait(timeout=2)
        t.join()
        assert r.result() == "value"

    def test_callback_after_completion_runs_immediately(self):
        r = TargetRegion(lambda: 1)
        r.run()
        seen = []
        r.add_done_callback(seen.append)
        assert seen == [r]

    def test_callbacks_fire_once_in_order(self):
        seen = []
        r = TargetRegion(lambda: 1)
        r.add_done_callback(lambda _: seen.append("a"))
        r.add_done_callback(lambda _: seen.append("b"))
        r.run()
        assert seen == ["a", "b"]

    def test_callback_on_failure(self):
        seen = []
        r = TargetRegion(lambda: 1 / 0)
        r.add_done_callback(lambda reg: seen.append(reg.state))
        r.run()
        assert seen == [RegionState.FAILED]


class TestStateEnum:
    @pytest.mark.parametrize(
        "state,terminal",
        [
            (RegionState.PENDING, False),
            (RegionState.RUNNING, False),
            (RegionState.COMPLETED, True),
            (RegionState.FAILED, True),
            (RegionState.CANCELLED, True),
        ],
    )
    def test_terminality(self, state, terminal):
        assert state.is_terminal is terminal
