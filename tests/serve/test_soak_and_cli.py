"""The serve worker-kill soak phase and the ``repro serve`` CLI surface.

The soak test is the acceptance criterion made executable: a process
worker is hard-killed while live HTTP requests are in flight, and every
request must come back as a response (5xx at worst) — no hangs, no
backlog leaks, clean drain afterwards.
"""

from __future__ import annotations

import json

from repro.check.report import render_report, CheckResult
from repro.check.stress import PROFILES
from repro.cli import main
from repro.serve.soak import run_serve_phase


def test_worker_kill_under_live_load_yields_errors_not_hangs():
    outcome = run_serve_phase(PROFILES["smoke"], seed=0)
    assert outcome.label == "serve"
    assert outcome.ok, [v.render() for v in outcome.violations]


def test_serve_phase_renders_as_named_phase():
    from repro.check.report import PhaseOutcome

    result = CheckResult(profile="soak", seed=7, ops=1, inject=None)
    result.phases.append(PhaseOutcome("0"))
    result.phases.append(PhaseOutcome("dist"))
    result.phases.append(PhaseOutcome("serve"))
    text = render_report(result)
    assert "iteration 0: ok" in text
    assert "phase dist: ok" in text
    assert "phase serve: ok" in text
    assert "iterations=1" in text  # named phases are not iterations


def test_cli_serve_bench_smoke(tmp_path, capsys):
    out = tmp_path / "serve.json"
    code = main([
        "serve", "--bench", "--backend", "thread",
        "--requests", "300", "--concurrency", "8",
        "-o", str(out),
    ])
    assert code == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.bench/v1"
    entry = doc["benchmarks"]["serve_live_thread"]
    assert entry["repeats"] == 300
    assert entry["p50_ns"] > 0
    assert entry["p99_ns"] >= entry["p50_ns"]
    backend = doc["serve"]["backends"]["thread"]
    assert backend["statuses"].get("200") == 300
    assert backend["drain_clean"] is True
    assert backend["throughput_rps"] > 0
    assert "req/s" in capsys.readouterr().out


def test_cli_serve_bench_loads_as_baselineable_document(tmp_path):
    """The emitted JSON round-trips through the bench loader, so it can
    become a --compare baseline once history exists."""
    from repro import bench as b

    out = tmp_path / "serve.json"
    assert main([
        "serve", "--bench", "--backend", "thread",
        "--requests", "100", "--concurrency", "4", "-o", str(out),
    ]) == 0
    doc = b.load_json(out)
    assert "serve_live_thread" in doc["benchmarks"]


def test_cli_serve_duration_mode(capsys):
    code = main([
        "serve", "--backend", "thread", "--port", "0",
        "--duration", "0.3",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "serving on http://127.0.0.1:" in out
    # The final stats snapshot is printed as JSON.
    snapshot = json.loads(out[out.index("{"):])
    assert snapshot["requests"] == 0


def test_cli_serve_rejects_both_backends_outside_bench(capsys):
    assert main(["serve", "--backend", "both", "--duration", "0.1"]) == 2
    assert "single --backend" in capsys.readouterr().err
