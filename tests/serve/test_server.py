"""Request-path contracts of the live Fig. 9 server.

Everything here runs a real :class:`~repro.serve.server.HttpServer` on an
ephemeral localhost port and talks to it over actual sockets with the
load generator's client — no mocked transports, so a passing suite means
the paper's serving story works end to end on this host.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import HttpServer, ServeConfig, encrypt_payload, make_payload
from repro.serve.loadgen import _Client, run_closed_loop


def serve(cfg: ServeConfig, body):
    """Start a server, run ``await body(server)``, always stop cleanly."""

    async def main():
        server = HttpServer(cfg)
        await server.start()
        try:
            return await body(server)
        finally:
            await server.stop()

    return asyncio.run(main())


def cfg(**overrides) -> ServeConfig:
    base = dict(backend="thread", workers=2, queue_capacity=8,
                policy="reject")
    base.update(overrides)
    return ServeConfig(**base)


# --------------------------------------------------------------- round trips


@pytest.mark.parametrize("policy", ["block", "reject", "caller_runs"])
def test_roundtrip_under_every_rejection_policy(policy):
    """A concurrent burst completes under each admission policy: every
    request is answered, and the only outcomes are success or rejection."""

    async def body(server):
        return await run_closed_loop(
            "127.0.0.1", server.port, requests=60, concurrency=8,
            payload_bytes=64,
        )

    result = serve(cfg(policy=policy, admission_timeout=0.2), body)
    assert result.requests == 60
    assert result.errors == 0
    assert set(result.statuses) <= {200, 503}, result.statuses
    assert result.statuses.get(200, 0) >= 1


def test_encrypt_response_is_the_kernel_output():
    payload = make_payload(64)

    async def body(server):
        client = _Client("127.0.0.1", server.port)
        status, response, _ = await client.request("POST", "/encrypt", payload)
        await client.close()
        return status, response

    status, response = serve(cfg(), body)
    assert status == 200
    assert response == encrypt_payload(payload)


def test_rejection_maps_to_503_with_structured_headers():
    """Satellite 1, server side: a full bounded queue surfaces as 503 and
    the response names the refusing target and its policy."""

    async def body(server):
        # 6 slow requests at once against 1 worker + capacity 1: at least
        # 4 must be rejected at admission.
        clients = [_Client("127.0.0.1", server.port) for _ in range(6)]
        results = await asyncio.gather(
            *(c.request("POST", "/encrypt", make_payload(4096))
              for c in clients)
        )
        rejected = [c.last_headers for c, (status, _, _) in
                    zip(clients, results) if status == 503]
        statuses = [status for status, _, _ in results]
        for c in clients:
            await c.close()
        return statuses, rejected, server.stats.snapshot()

    statuses, rejected, snap = serve(
        cfg(workers=1, queue_capacity=1, rounds=40), body
    )
    assert statuses.count(503) >= 1, statuses
    assert set(statuses) <= {200, 503}
    for headers in rejected:
        assert headers["x-rejected-by"] == "http-cpu"
        assert headers["x-rejection-policy"] == "reject"
    assert snap["rejected"] == statuses.count(503)


def test_keep_alive_reuses_one_connection():
    async def body(server):
        client = _Client("127.0.0.1", server.port)
        for _ in range(5):
            status, _, keep = await client.request(
                "POST", "/encrypt", make_payload(16))
            assert status == 200 and keep
        await client.close()
        return server.stats.snapshot()

    snap = serve(cfg(), body)
    assert snap["requests"] == 5
    assert snap["connections"] == 1


def test_request_deadline_maps_to_504():
    """Satellite: the dispatch's ``timeout=`` clause surfaces as 504."""

    async def body(server):
        client = _Client("127.0.0.1", server.port)
        status, message, _ = await client.request(
            "POST", "/encrypt", make_payload(8192))
        await client.close()
        return status, message, server.stats.snapshot()

    status, message, snap = serve(
        cfg(workers=1, request_timeout=0.1, rounds=2000), body
    )
    assert status == 504
    assert b"exceeded" in message
    assert snap["timeouts"] == 1


# ------------------------------------------------------------------- routing


def test_small_routes_and_errors():
    async def body(server):
        client = _Client("127.0.0.1", server.port)
        out = {}
        out["health"] = await client.request("GET", "/healthz")
        out["stats"] = await client.request("GET", "/stats")
        out["root"] = await client.request("GET", "/")
        out["missing"] = await client.request("GET", "/nope")
        out["badlen"] = await client.request("POST", "/encrypt", b"123")
        await client.close()
        return out

    out = serve(cfg(), body)
    assert out["health"][0] == 200 and out["health"][1] == b"ok"
    assert out["root"][0] == 200
    assert out["missing"][0] == 404
    assert out["badlen"][0] == 400
    stats = json.loads(out["stats"][1])
    assert "http-cpu" in stats["targets"]
    assert "http-edt" in stats["targets"]
    assert stats["draining"] is False


# --------------------------------------------------------------------- drain


def test_graceful_drain_finishes_inflight_requests():
    """``stop()`` mirrors ``shutdown(wait=True)``: the in-flight request
    completes with 200 and the drain reports clean."""

    async def main():
        server = HttpServer(cfg(workers=1, rounds=60))
        await server.start()
        client = _Client("127.0.0.1", server.port)
        inflight = asyncio.create_task(
            client.request("POST", "/encrypt", make_payload(4096)))
        await asyncio.sleep(0.05)  # request is on the worker
        await server.stop()        # graceful: default 5s grace
        status, _, _ = await inflight
        await client.close()
        return status, server._drain_clean

    status, clean = asyncio.run(main())
    assert status == 200
    assert clean is True


def test_drain_downgrades_to_cancel_past_grace(caplog):
    """Satellite 2, server side: a drain that cannot finish within its
    grace downgrades to cancellation — with a diagnostic — instead of
    hanging the accept loop forever."""
    import logging

    async def main():
        server = HttpServer(
            cfg(workers=1, rounds=4000, drain_grace=0.2,
                request_timeout=30.0))
        await server.start()
        client = _Client("127.0.0.1", server.port)
        inflight = asyncio.create_task(
            client.request("POST", "/encrypt", make_payload(8192)))
        await asyncio.sleep(0.1)   # request is crunching on the worker
        await server.stop()        # grace 0.2s cannot cover it
        outcome: object
        try:
            outcome = await asyncio.wait_for(inflight, timeout=5)
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            outcome = exc
        await client.close()
        return server._drain_clean, outcome

    with caplog.at_level(logging.WARNING, logger="repro.serve.server"):
        clean, outcome = asyncio.run(main())
    assert clean is False
    # The aborted transport is the expected client-side view.
    assert isinstance(outcome, (ConnectionError, asyncio.IncompleteReadError))
    assert any("downgrading drain to cancel" in r.message
               for r in caplog.records)


def test_requests_during_drain_get_503():
    async def main():
        server = HttpServer(cfg())
        await server.start()
        port = server.port
        client = _Client("127.0.0.1", port)
        status, _, _ = await client.request("POST", "/encrypt",
                                            make_payload(16))
        assert status == 200
        server._draining = True    # the drain window, frozen open
        status, body, keep = await client.request("POST", "/encrypt",
                                                  make_payload(16))
        await client.close()
        server._draining = False
        await server.stop()
        return status, body, keep, server.stats.snapshot()

    status, body, keep, snap = asyncio.run(main())
    assert status == 503
    assert b"draining" in body
    assert keep is False
    assert snap["draining_rejects"] == 1
