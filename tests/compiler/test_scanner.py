"""Tests for pragma scanning."""

import pytest

from repro.core import DirectiveSyntaxError
from repro.compiler import scan_pragmas, TargetDir, BarrierDir


class TestScan:
    def test_finds_pragmas_with_positions(self):
        src = (
            "x = 1\n"
            "#omp target virtual(w) nowait\n"
            "y = 2\n"
            "def f():\n"
            "    #omp barrier\n"
            "    pass\n"
        )
        pragmas = scan_pragmas(src)
        assert len(pragmas) == 2
        assert pragmas[0].line == 2 and pragmas[0].col == 0
        assert isinstance(pragmas[0].directive, TargetDir)
        assert pragmas[1].line == 5 and pragmas[1].col == 4
        assert isinstance(pragmas[1].directive, BarrierDir)

    def test_ordinary_comments_ignored(self):
        src = "# a comment\n#ompx not a pragma\n# omp also not\nx = 1\n"
        assert scan_pragmas(src) == []

    def test_pragma_word_boundary(self):
        assert scan_pragmas("#omp barrier\n") != []
        assert scan_pragmas("#ompbarrier\n") == []

    def test_trailing_pragma_rejected(self):
        with pytest.raises(DirectiveSyntaxError) as ei:
            scan_pragmas("x = 1  #omp barrier\n")
        assert "own line" in str(ei.value)

    def test_malformed_directive_reports_line(self):
        with pytest.raises(DirectiveSyntaxError) as ei:
            scan_pragmas("a = 1\n#omp target nowait\n")
        assert ei.value.line == 2

    def test_pragmas_sorted_by_line(self):
        src = "#omp barrier\nx = 1\n#omp barrier\ny = 2\n"
        pragmas = scan_pragmas(src)
        assert [p.line for p in pragmas] == [1, 3]

    def test_empty_source(self):
        assert scan_pragmas("") == []

    def test_multiline_statements_tracked(self):
        # a #omp comment inside a multi-line expression's lines is trailing
        src = "x = (1 +\n     2)\n#omp barrier\ny = 1\n"
        pragmas = scan_pragmas(src)
        assert len(pragmas) == 1
