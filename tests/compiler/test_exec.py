"""End-to-end tests: compiled pragma code actually runs with the semantics
the paper specifies."""

import threading
import time

import pytest

from repro.core import PjRuntime, RegionFailedError
from repro.compiler import compiled_source_of, exec_omp, omp


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    runtime.start_edt("edt")
    runtime.create_worker("worker", 3)
    yield runtime
    runtime.shutdown(wait=False)


class TestTargetExecution:
    def test_default_target_runs_on_worker(self, rt):
        ns = exec_omp(
            "import threading\n"
            "out = {}\n"
            "def f():\n"
            "    #omp target virtual(worker)\n"
            "    out['thread'] = threading.current_thread().name\n"
            "f()\n",
            runtime=rt,
        )
        assert ns["out"]["thread"].startswith("pyjama-worker-")

    def test_shared_writeback(self, rt):
        ns = exec_omp(
            "def f():\n"
            "    #omp target virtual(worker)\n"
            "    x = 41 + 1\n"
            "    return x\n"
            "result = f()\n",
            runtime=rt,
        )
        assert ns["result"] == 42

    def test_nowait_is_asynchronous(self, rt):
        ns = exec_omp(
            "import threading\n"
            "gate = threading.Event()\n"
            "ran = threading.Event()\n"
            "def f():\n"
            "    #omp target virtual(worker) nowait\n"
            "    if True:\n"
            "        gate.wait(5)\n"
            "        ran.set()\n"
            "    return 'returned-before-block'\n"
            "result = f()\n",
            runtime=rt,
        )
        assert ns["result"] == "returned-before-block"
        assert not ns["ran"].is_set()
        ns["gate"].set()
        assert ns["ran"].wait(5)

    def test_name_as_wait_joins(self, rt):
        ns = exec_omp(
            "done = []\n"
            "def f():\n"
            "    #omp target virtual(worker) name_as(g)\n"
            "    done.append(1)\n"
            "    #omp target virtual(worker) name_as(g)\n"
            "    done.append(2)\n"
            "    #omp wait(g)\n"
            "    return sorted(done)\n"
            "result = f()\n",
            runtime=rt,
        )
        assert ns["result"] == [1, 2]

    def test_await_from_edt_processes_other_events(self, rt):
        """The compiled Figure 6 pattern shows the logical barrier."""
        ns = exec_omp(
            "import time\n"
            "order = []\n"
            "def handler():\n"
            "    #omp target virtual(worker) await\n"
            "    if True:\n"
            "        time.sleep(0.1)\n"
            "        order.append('offloaded')\n"
            "    order.append('continuation')\n",
            runtime=rt,
        )
        edt = rt.get_target("edt")
        handle = rt.invoke_target_block("edt", ns["handler"], "nowait")
        time.sleep(0.02)
        rt.invoke_target_block("edt", lambda: ns["order"].append("other-event"), "nowait")
        handle.wait(5)
        time.sleep(0.05)
        assert ns["order"] == ["other-event", "offloaded", "continuation"]

    def test_if_clause_false_runs_inline(self, rt):
        ns = exec_omp(
            "import threading\n"
            "def f(n):\n"
            "    #omp target virtual(worker) if(n > 100)\n"
            "    t = threading.current_thread()\n"
            "    return t\n"
            "result = f(5)\n",
            runtime=rt,
        )
        assert ns["result"] is threading.current_thread()

    def test_firstprivate_snapshots_value(self, rt):
        ns = exec_omp(
            "import threading\n"
            "gate = threading.Event()\n"
            "out = []\n"
            "def f():\n"
            "    v = 'original'\n"
            "    #omp target virtual(worker) nowait firstprivate(v)\n"
            "    if True:\n"
            "        gate.wait(5)\n"
            "        out.append(v)\n"
            "    v = 'mutated'\n"
            "    return v\n"
            "f()\n",
            runtime=rt,
        )
        ns["gate"].set()
        deadline = time.monotonic() + 5
        while not ns["out"] and time.monotonic() < deadline:
            time.sleep(0.01)
        assert ns["out"] == ["original"]  # saw the snapshot, not the mutation

    def test_exception_in_waiting_target_propagates(self, rt):
        ns = exec_omp(
            "def f():\n"
            "    #omp target virtual(worker)\n"
            "    raise ValueError('inner')\n",
            runtime=rt,
        )
        with pytest.raises(RegionFailedError) as ei:
            ns["f"]()
        assert isinstance(ei.value.cause, ValueError)


class TestForkJoinExecution:
    def test_parallel_region_thread_count(self, rt):
        ns = exec_omp(
            "import repro.openmp as omp_api\n"
            "seen = set()\n"
            "import threading\n"
            "lock = threading.Lock()\n"
            "def f():\n"
            "    #omp parallel num_threads(3)\n"
            "    if True:\n"
            "        with lock:\n"
            "            seen.add(omp_api.omp_get_thread_num())\n"
            "f()\n",
            runtime=rt,
        )
        assert ns["seen"] == {0, 1, 2}

    def test_parallel_for_reduction(self, rt):
        ns = exec_omp(
            "def f(n):\n"
            "    total = 0\n"
            "    #omp parallel for num_threads(4) reduction(+:total)\n"
            "    for i in range(n):\n"
            "        total += i * i\n"
            "    return total\n"
            "result = f(200)\n",
            runtime=rt,
        )
        assert ns["result"] == sum(i * i for i in range(200))

    def test_parallel_for_max_reduction(self, rt):
        ns = exec_omp(
            "def f(data):\n"
            "    best = float('-inf')\n"
            "    #omp parallel for num_threads(3) reduction(max:best)\n"
            "    for x in data:\n"
            "        if x > best:\n"
            "            best = x\n"
            "    return best\n"
            "result = f([3, 1, 4, 1, 5, 9, 2, 6])\n",
            runtime=rt,
        )
        assert ns["result"] == 9

    def test_critical_protects_shared_state(self, rt):
        ns = exec_omp(
            "count = {'v': 0}\n"
            "def f():\n"
            "    #omp parallel num_threads(4)\n"
            "    if True:\n"
            "        for _ in range(100):\n"
            "            #omp critical(c)\n"
            "            count['v'] += 1\n"
            "f()\n",
            runtime=rt,
        )
        assert ns["count"]["v"] == 400

    def test_sections_execute_once_each(self, rt):
        ns = exec_omp(
            "hits = []\n"
            "def f():\n"
            "    #omp parallel num_threads(2)\n"
            "    if True:\n"
            "        #omp sections\n"
            "        if True:\n"
            "            #omp section\n"
            "            hits.append('a')\n"
            "            #omp section\n"
            "            hits.append('b')\n"
            "f()\n",
            runtime=rt,
        )
        assert sorted(ns["hits"]) == ["a", "b"]

    def test_single_runs_once(self, rt):
        ns = exec_omp(
            "hits = []\n"
            "def f():\n"
            "    #omp parallel num_threads(4)\n"
            "    if True:\n"
            "        #omp single\n"
            "        hits.append(1)\n"
            "f()\n",
            runtime=rt,
        )
        assert ns["hits"] == [1]

    def test_barrier_statement(self, rt):
        ns = exec_omp(
            "import repro.openmp as omp_api\n"
            "phases = []\n"
            "import threading\n"
            "lock = threading.Lock()\n"
            "def f():\n"
            "    #omp parallel num_threads(3)\n"
            "    if True:\n"
            "        with lock:\n"
            "            phases.append('pre')\n"
            "        #omp barrier\n"
            "        with lock:\n"
            "            phases.append('post')\n"
            "f()\n",
            runtime=rt,
        )
        assert ns["phases"][:3] == ["pre"] * 3
        assert ns["phases"][3:] == ["post"] * 3


class TestOmpDecorator:
    def test_decorator_compiles_and_runs(self, rt):
        @omp(runtime=rt)
        def square_sum(n):
            total = 0
            #omp parallel for num_threads(2) reduction(+:total)
            for i in range(n):
                total += i * i
            return total

        assert square_sum(50) == sum(i * i for i in range(50))
        assert "for_loop" in compiled_source_of(square_sum)

    def test_decorator_without_runtime_uses_default(self):
        from repro.core import default_runtime, reset_default_runtime

        reset_default_runtime()
        try:
            default_runtime().create_worker("worker", 2)

            @omp
            def offload():
                #omp target virtual(worker)
                result = "from-worker"
                return result

            assert offload() == "from-worker"
        finally:
            reset_default_runtime()

    def test_decorator_snapshots_closure(self, rt):
        base = 10

        @omp(runtime=rt)
        def use_closure(x):
            #omp target virtual(worker)
            y = base + x
            return y

        assert use_closure(5) == 15

    def test_metadata_preserved(self, rt):
        @omp(runtime=rt)
        def documented():
            """doc text"""
            #omp target virtual(worker)
            pass

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "doc text"

    def test_compiled_source_of_plain_function(self):
        with pytest.raises(ValueError):
            compiled_source_of(len)

    def test_sequential_equivalence(self, rt):
        """The philosophy check: the original (pragmas ignored) and compiled
        versions compute the same result."""

        def original(n):
            total = 0
            for i in range(n):
                total += i
            acc = []
            acc.append(total)
            return acc[0]

        @omp(runtime=rt)
        def compiled(n):
            total = 0
            #omp parallel for num_threads(3) reduction(+:total)
            for i in range(n):
                total += i
            acc = []
            #omp target virtual(worker)
            acc.append(total)
            return acc[0]

        for n in (0, 1, 17, 100):
            assert compiled(n) == original(n)
