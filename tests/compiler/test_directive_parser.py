"""Tests for directive lexing and parsing (paper Figure 5 grammar)."""

import pytest

from repro.core import DirectiveSyntaxError, SchedulingMode, TargetKind
from repro.core.directives import DataSharing
from repro.compiler import (
    BarrierDir,
    CriticalDir,
    ForDir,
    MasterDir,
    ParallelDir,
    ParallelForDir,
    SectionDir,
    SectionsDir,
    SingleDir,
    TargetDir,
    WaitDir,
    parse_directive,
)
from repro.compiler.directive_lexer import DirectiveLexer


class TestLexer:
    def test_tokens(self):
        lx = DirectiveLexer("virtual(worker) nowait")
        kinds = []
        while not lx.at_end():
            kinds.append(lx.next().kind)
        assert kinds == ["NAME", "LPAREN", "NAME", "RPAREN", "NAME"]

    def test_operators(self):
        lx = DirectiveLexer("reduction(&&:flag)")
        texts = []
        while not lx.at_end():
            texts.append(lx.next().text)
        assert "&&" in texts

    def test_raw_parenthesized_nested(self):
        lx = DirectiveLexer("(f(a, b) + (c))")
        assert lx.raw_parenthesized() == "f(a, b) + (c)"

    def test_raw_unbalanced(self):
        with pytest.raises(DirectiveSyntaxError):
            DirectiveLexer("(a + b").raw_parenthesized()

    def test_peek_is_stable(self):
        lx = DirectiveLexer("abc")
        assert lx.peek().text == "abc"
        assert lx.peek().text == "abc"
        assert lx.next().text == "abc"
        assert lx.at_end()

    def test_unexpected_character(self):
        with pytest.raises(DirectiveSyntaxError):
            lx = DirectiveLexer("virtual@worker")
            while not lx.at_end():
                lx.next()


class TestTargetDirective:
    def test_minimal_virtual(self):
        d = parse_directive("target virtual(worker)")
        assert isinstance(d, TargetDir)
        assert d.directive.target.kind is TargetKind.VIRTUAL
        assert d.directive.target.name == "worker"
        assert d.directive.mode is SchedulingMode.DEFAULT

    @pytest.mark.parametrize(
        "text,mode",
        [
            ("target virtual(w) nowait", SchedulingMode.NOWAIT),
            ("target virtual(w) await", SchedulingMode.AWAIT),
            ("target virtual(w) name_as(grp)", SchedulingMode.NAME_AS),
        ],
    )
    def test_scheduling_clauses(self, text, mode):
        d = parse_directive(text)
        assert d.directive.mode is mode

    def test_name_as_tag_recorded(self):
        d = parse_directive("target virtual(w) name_as(mytag)")
        assert d.directive.tag == "mytag"

    def test_device_clause(self):
        d = parse_directive("target device(2)")
        assert d.directive.target.kind is TargetKind.DEVICE
        assert d.directive.target.device_number == 2

    def test_if_clause_raw_expression(self):
        d = parse_directive("target virtual(w) if(n > len(xs))")
        assert d.directive.if_condition == "n > len(xs)"

    def test_data_clauses(self):
        d = parse_directive("target virtual(w) firstprivate(a, b) private(c)")
        clauses = {c.sharing: c.variables for c in d.directive.data_clauses}
        assert clauses[DataSharing.FIRSTPRIVATE] == ("a", "b")
        assert clauses[DataSharing.PRIVATE] == ("c",)

    def test_missing_target_property(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("target nowait")

    def test_duplicate_target_property(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("target virtual(a) virtual(b)")

    def test_duplicate_scheduling(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("target virtual(a) nowait await")

    def test_unknown_clause(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("target virtual(a) wibble")

    def test_device_number_must_be_int(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("target device(gpu)")


class TestOtherDirectives:
    def test_wait(self):
        d = parse_directive("wait(grp)")
        assert isinstance(d, WaitDir)
        assert d.tag == "grp"
        assert d.standalone

    def test_barrier(self):
        d = parse_directive("barrier")
        assert isinstance(d, BarrierDir)
        assert d.standalone

    def test_parallel_with_clauses(self):
        d = parse_directive("parallel num_threads(2 * n) if(flag)")
        assert isinstance(d, ParallelDir)
        assert d.num_threads == "2 * n"
        assert d.if_condition == "flag"

    def test_for_with_schedule_and_reduction(self):
        d = parse_directive("for schedule(guided, 4) reduction(*:prod) nowait")
        assert isinstance(d, ForDir)
        assert d.schedule == "guided"
        assert d.chunk == 4
        assert d.reduction_op == "*"
        assert d.reduction_var == "prod"
        assert d.nowait

    def test_reduction_name_operator(self):
        d = parse_directive("for reduction(max:best)")
        assert d.reduction_op == "max"

    def test_parallel_for_combined(self):
        d = parse_directive("parallel for num_threads(3) schedule(dynamic) reduction(+:s)")
        assert isinstance(d, ParallelForDir)
        assert d.parallel.num_threads == "3"
        assert d.loop.schedule == "dynamic"
        assert d.loop.reduction_var == "s"

    def test_parallel_for_rejects_nowait(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("parallel for nowait")

    def test_critical_named_and_unnamed(self):
        assert parse_directive("critical").name == ""
        assert parse_directive("critical(locky)").name == "locky"

    def test_single_master_sections_section(self):
        assert isinstance(parse_directive("single"), SingleDir)
        assert parse_directive("single nowait").nowait
        assert isinstance(parse_directive("master"), MasterDir)
        assert isinstance(parse_directive("sections"), SectionsDir)
        assert isinstance(parse_directive("section"), SectionDir)

    def test_unknown_directive(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("teams distribute")

    def test_trailing_garbage(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("barrier extra")

    def test_bad_schedule(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("for schedule(random)")

    def test_bad_chunk(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("for schedule(static, 0)")

    def test_error_carries_line(self):
        with pytest.raises(DirectiveSyntaxError) as ei:
            parse_directive("target nowait", line=17)
        assert ei.value.line == 17
