"""Tests for @omp applied to methods and other decoration shapes."""

import threading

import pytest

from repro.core import PjRuntime
from repro.compiler import omp


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    runtime.create_worker("worker", 2)
    yield runtime
    runtime.shutdown(wait=False)


class TestMethods:
    def test_omp_on_instance_method(self, rt):
        class Service:
            def __init__(self):
                self.log = []

            @omp(runtime=rt)
            def handle(self, x):
                #omp target virtual(worker)
                result = x * 2
                self.log.append(result)
                return result

        s = Service()
        assert s.handle(21) == 42
        assert s.log == [42]

    def test_method_runs_block_on_worker(self, rt):
        class Service:
            @omp(runtime=rt)
            def where(self):
                #omp target virtual(worker)
                name = threading.current_thread().name
                return name

        assert Service().where().startswith("pyjama-worker-")

    def test_omp_on_staticmethod_function(self, rt):
        class Holder:
            @staticmethod
            @omp(runtime=rt)
            def compute(n):
                total = 0
                #omp parallel for num_threads(2) reduction(+:total)
                for i in range(n):
                    total += i
                return total

        assert Holder.compute(10) == 45

    def test_method_with_parallel_region_and_self_state(self, rt):
        import repro.openmp as omp_api

        class Counter:
            def __init__(self):
                self.hits = omp_api.Atomic(0)

            @omp(runtime=rt)
            def bump(self):
                #omp parallel num_threads(3)
                self.hits.add(1)

        c = Counter()
        c.bump()
        assert c.hits.value == 3


class TestDecorationShapes:
    def test_stacked_decorators_are_stripped(self, rt):
        import functools

        def noop_decorator(fn):
            @functools.wraps(fn)
            def inner(*a, **k):
                return fn(*a, **k)

            return inner

        # @omp must be the OUTERMOST so inspect sees the original source; it
        # strips the whole decorator list from the compiled def.
        @omp(runtime=rt)
        @noop_decorator
        def f():
            #omp target virtual(worker)
            v = "ok"
            return v

        assert f() == "ok"

    def test_default_arguments_preserved(self, rt):
        @omp(runtime=rt)
        def f(a, b=10, *rest, **kw):
            #omp target virtual(worker)
            total = a + b + sum(rest) + sum(kw.values())
            return total

        assert f(1) == 11
        assert f(1, 2, 3, x=4) == 10

    def test_recursive_compiled_function(self, rt):
        @omp(runtime=rt)
        def fib(n):
            #omp task if(False)
            pass
            if n < 2:
                return n
            return fib(n - 1) + fib(n - 2)

        assert fib(10) == 55
