"""Tests for task/taskwait, parallel sections, and default() in the compiler."""

import pytest

from repro.core import DirectiveSyntaxError, PjRuntime
from repro.compiler import (
    ParallelSectionsDir,
    TaskDir,
    TaskwaitDir,
    compile_source,
    exec_omp,
    parse_directive,
)


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    runtime.create_worker("worker", 2)
    yield runtime
    runtime.shutdown(wait=False)


class TestParsing:
    def test_task_directive(self):
        d = parse_directive("task if(n > 2) firstprivate(x)")
        assert isinstance(d, TaskDir)
        assert d.if_condition == "n > 2"
        assert d.data_clauses[0].variables == ("x",)

    def test_task_unknown_clause(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("task nowait")

    def test_taskwait(self):
        d = parse_directive("taskwait")
        assert isinstance(d, TaskwaitDir)
        assert d.standalone

    def test_taskwait_no_clauses(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("taskwait now")

    def test_parallel_sections(self):
        d = parse_directive("parallel sections num_threads(3)")
        assert isinstance(d, ParallelSectionsDir)
        assert d.parallel.num_threads == "3"

    def test_default_shared(self):
        d = parse_directive("parallel default(shared)")
        assert d.default_sharing == "shared"

    def test_default_none(self):
        d = parse_directive("parallel default(none)")
        assert d.default_sharing == "none"

    def test_default_invalid(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("parallel default(private)")

    def test_default_duplicate(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("parallel default(shared) default(none)")


class TestTransform:
    def test_task_lifted(self):
        out = compile_source(
            "def f():\n"
            "    #omp task\n"
            "    work()\n"
        )
        assert "__repro_omp__.task(__omp_task_0)" in out

    def test_task_if_clause(self):
        out = compile_source(
            "def f(n):\n"
            "    #omp task if(n > 10)\n"
            "    work(n)\n"
        )
        assert "if_clause=n > 10" in out

    def test_taskwait_statement(self):
        out = compile_source("def f():\n    #omp taskwait\n    pass\n")
        assert "__repro_omp__.taskwait()" in out

    def test_task_return_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            compile_source("def f():\n    #omp task\n    return 1\n")

    def test_parallel_sections_structure(self):
        out = compile_source(
            "def f():\n"
            "    #omp parallel sections num_threads(2)\n"
            "    if True:\n"
            "        #omp section\n"
            "        a()\n"
            "        #omp section\n"
            "        b()\n"
        )
        assert "sections([__omp_section_0, __omp_section_1]" in out
        assert "__repro_omp__.parallel(" in out

    def test_default_none_rejects_undeclared_assignment(self):
        with pytest.raises(DirectiveSyntaxError) as ei:
            compile_source(
                "def f():\n"
                "    #omp parallel default(none)\n"
                "    x = 1\n"
            )
        assert "x" in str(ei.value)

    def test_default_none_accepts_declared(self):
        out = compile_source(
            "def f():\n"
            "    #omp parallel default(none) private(x) shared(y)\n"
            "    if True:\n"
            "        x = 1\n"
            "        y.append(x)\n"
        )
        assert "parallel" in out

    def test_default_shared_is_noop(self):
        out = compile_source(
            "def f():\n"
            "    #omp parallel default(shared)\n"
            "    x = 1\n"
        )
        assert "nonlocal x" in out


class TestExecution:
    def test_single_task_taskwait_flow(self, rt):
        ns = exec_omp(
            "out = []\n"
            "def f():\n"
            "    #omp parallel num_threads(3)\n"
            "    if True:\n"
            "        #omp single nowait\n"
            "        if True:\n"
            "            #omp task\n"
            "            out.append('alpha')\n"
            "            #omp task\n"
            "            out.append('beta')\n"
            "        #omp taskwait\n"
            "f()\n",
            runtime=rt,
        )
        assert sorted(ns["out"]) == ["alpha", "beta"]

    def test_orphaned_compiled_task_runs_inline(self, rt):
        ns = exec_omp(
            "import threading\n"
            "out = []\n"
            "def f():\n"
            "    #omp task\n"
            "    out.append(threading.current_thread())\n"
            "    return out[0]\n"
            "result = f()\n",
            runtime=rt,
        )
        import threading

        assert ns["result"] is threading.current_thread()

    def test_parallel_sections_execution(self, rt):
        ns = exec_omp(
            "res = []\n"
            "def g():\n"
            "    #omp parallel sections num_threads(2)\n"
            "    if True:\n"
            "        #omp section\n"
            "        res.append('a')\n"
            "        #omp section\n"
            "        res.append('b')\n"
            "        #omp section\n"
            "        res.append('c')\n"
            "g()\n",
            runtime=rt,
        )
        assert sorted(ns["res"]) == ["a", "b", "c"]

    def test_task_firstprivate_snapshot(self, rt):
        ns = exec_omp(
            "out = []\n"
            "def f():\n"
            "    #omp parallel num_threads(2)\n"
            "    if True:\n"
            "        #omp single nowait\n"
            "        if True:\n"
            "            v = 'snapshot'\n"
            "            #omp task firstprivate(v)\n"
            "            out.append(v)\n"
            "            v = 'mutated'\n"
            "        #omp taskwait\n"
            "f()\n",
            runtime=rt,
        )
        assert ns["out"] == ["snapshot"]
