"""End-to-end corpus test: one realistic module using every directive.

The strongest compiler confidence check: a single program that composes the
event-driven extension with the whole classic surface — and must compute
exactly what its sequential reading computes.
"""

import pytest

from repro.core import PjRuntime
from repro.compiler import compile_source, exec_omp

CORPUS = '''
import threading

def process_order(worker_tag_results, items, edt_log):
    """The event-driven half: offload, tag group, wait, EDT updates."""
    #omp target virtual(worker) name_as(orders)
    if True:
        subtotal = sum(items)
        worker_tag_results.append(("subtotal", subtotal))
    #omp target virtual(worker) name_as(orders)
    worker_tag_results.append(("count", len(items)))
    #omp wait(orders)
    #omp target virtual(edt) nowait
    edt_log.append("order processed")
    return sorted(worker_tag_results)


def analytics(matrix_rows, weights):
    """The fork-join half: parallel for/reduction, sections, single, task,
    critical, barrier, ordered, collapse."""
    lock = threading.Lock()
    stats = {"rows": 0}
    weighted_total = 0.0

    #omp parallel num_threads(3) default(shared)
    if True:
        #omp for schedule(dynamic, 1) reduction(+:weighted_total)
        for row in matrix_rows:
            for w, x in zip(weights, row):
                weighted_total += w * x

        #omp critical(stats)
        stats["rows"] += 1

        #omp barrier

        #omp single nowait
        if True:
            #omp task
            stats.setdefault("tasked", []).append("t1")
            #omp task
            stats.setdefault("tasked", []).append("t2")
        #omp taskwait

    ordered_trace = []
    #omp parallel for num_threads(2) schedule(dynamic, 1) ordered
    for i in range(6):
        scratch = i * i
        #omp ordered
        ordered_trace.append(i)

    grid_sum = 0
    #omp parallel for num_threads(2) collapse(2) reduction(+:grid_sum)
    for r in range(3):
        for c in range(4):
            grid_sum += r * 10 + c

    section_hits = []
    #omp parallel sections num_threads(2)
    if True:
        #omp section
        section_hits.append("alpha")
        #omp section
        section_hits.append("beta")

    return {
        "weighted_total": weighted_total,
        "team_rows": stats["rows"],
        "tasks": sorted(stats.get("tasked", [])),
        "ordered": ordered_trace,
        "grid_sum": grid_sum,
        "sections": sorted(section_hits),
    }
'''


def sequential_reference():
    """CORPUS with pragmas ignored (what any Python interpreter computes)."""
    ns: dict = {}
    exec(compile(CORPUS, "<plain corpus>", "exec"), ns)
    return ns


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    runtime.start_edt("edt")
    runtime.create_worker("worker", 3)
    yield runtime
    runtime.shutdown(wait=False)


class TestCorpus:
    def test_compiles_cleanly(self):
        out = compile_source(CORPUS)
        for marker in ("run_on", "wait_for", "parallel(", "for_loop", "critical",
                       "barrier", "single", "task(", "taskwait", "ordered",
                       "collapse_product", "sections"):
            assert marker in out, f"missing {marker} in generated code"

    def test_event_driven_half_matches_sequential(self, rt):
        import time

        plain = sequential_reference()
        compiled = exec_omp(CORPUS, runtime=rt)

        p_log, c_log = [], []
        p = plain["process_order"]([], [3, 4, 5], p_log)
        c = compiled["process_order"]([], [3, 4, 5], c_log)
        assert c == p == [("count", 3), ("subtotal", 12)]
        deadline = time.monotonic() + 5
        while not c_log and time.monotonic() < deadline:
            time.sleep(0.01)
        assert c_log == p_log == ["order processed"]

    def test_fork_join_half_matches_sequential(self, rt):
        plain = sequential_reference()
        compiled = exec_omp(CORPUS, runtime=rt)

        rows = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]
        weights = [0.5, 1.5, 2.5]
        p = plain["analytics"](rows, weights)
        c = compiled["analytics"](rows, weights)

        assert c["weighted_total"] == pytest.approx(p["weighted_total"])
        assert c["ordered"] == p["ordered"] == list(range(6))
        assert c["grid_sum"] == p["grid_sum"]
        assert c["tasks"] == p["tasks"] == ["t1", "t2"]
        assert c["sections"] == p["sections"] == ["alpha", "beta"]
        # Divergence by design: sequentially one "thread" bumps rows once;
        # a 3-member team bumps it three times (per-thread execution).
        assert p["team_rows"] == 1
        assert c["team_rows"] == 3

    def test_corpus_is_deterministic_across_runs(self, rt):
        compiled = exec_omp(CORPUS, runtime=rt)
        rows = [[1.0, 2.0], [3.0, 4.0]]
        weights = [2.0, 3.0]
        a = compiled["analytics"](rows, weights)
        b = compiled["analytics"](rows, weights)
        assert a == b
