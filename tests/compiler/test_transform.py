"""Tests for the region-lifting transform: generated-code structure and
compile-time error detection."""

import ast

import pytest

from repro.core import DirectiveSyntaxError
from repro.compiler import compile_source


def compiled_ast(src: str) -> ast.Module:
    return ast.parse(compile_source(src))


class TestTargetLifting:
    def test_region_function_generated(self):
        out = compile_source(
            "def f():\n"
            "    #omp target virtual(w) nowait\n"
            "    do_work()\n"
        )
        assert "def __omp_region_0():" in out
        assert "__repro_omp__.run_on('w', __omp_region_0, mode='nowait'" in out

    def test_if_true_sugar_groups_statements(self):
        out = compile_source(
            "def f():\n"
            "    #omp target virtual(w) await\n"
            "    if True:\n"
            "        a()\n"
            "        b()\n"
        )
        # both calls inside one region; the 'if True' scaffold is gone
        assert out.count("run_on") == 1
        assert "if True" not in out

    def test_assigned_names_become_nonlocal(self):
        out = compile_source(
            "def f():\n"
            "    #omp target virtual(w) await\n"
            "    x = 1\n"
            "    return x\n"
        )
        assert "nonlocal x" in out
        assert "x = None" in out  # pre-init: no other binding in f

    def test_no_preinit_when_bound_before(self):
        out = compile_source(
            "def f():\n"
            "    x = 0\n"
            "    #omp target virtual(w) await\n"
            "    x = x + 1\n"
            "    return x\n"
        )
        assert "nonlocal x" in out
        assert "x = None" not in out

    def test_module_level_uses_global(self):
        out = compile_source(
            "#omp target virtual(w) await\n"
            "x = 1\n"
        )
        assert "global x" in out

    def test_firstprivate_becomes_default_arg(self):
        out = compile_source(
            "def f(a):\n"
            "    #omp target virtual(w) nowait firstprivate(a)\n"
            "    use(a)\n"
        )
        assert "def __omp_region_0(a=a):" in out

    def test_private_initialised_none(self):
        out = compile_source(
            "def f():\n"
            "    #omp target virtual(w) nowait private(tmp)\n"
            "    tmp = 1\n"
        )
        assert "tmp = None" in out
        assert "nonlocal" not in out  # private names do not write through

    def test_if_clause_forwarded(self):
        out = compile_source(
            "def f(n):\n"
            "    #omp target virtual(w) nowait if(n > 10)\n"
            "    work(n)\n"
        )
        assert "condition=n > 10" in out

    def test_nested_targets(self):
        out = compile_source(
            "def f():\n"
            "    #omp target virtual(w) await\n"
            "    if True:\n"
            "        a()\n"
            "        #omp target virtual(edt) nowait\n"
            "        update()\n"
        )
        assert out.count("run_on") == 2
        # the inner region is defined inside the outer one
        tree = ast.parse(out)
        outer = next(
            n for n in ast.walk(tree)
            if isinstance(n, ast.FunctionDef) and n.name.startswith("__omp_region")
            and any(isinstance(c, ast.FunctionDef) for c in n.body)
        )
        assert outer is not None

    def test_device_target_rejected_at_compile_time(self):
        with pytest.raises(DirectiveSyntaxError) as ei:
            compile_source("#omp target device(0)\nx = 1\n")
        assert "virtual targets only" in str(ei.value)

    def test_return_inside_region_rejected(self):
        with pytest.raises(DirectiveSyntaxError) as ei:
            compile_source(
                "def f():\n"
                "    #omp target virtual(w) nowait\n"
                "    return 1\n"
            )
        assert "structured-block" in str(ei.value)

    def test_break_inside_region_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            compile_source(
                "def f():\n"
                "    for i in range(3):\n"
                "        #omp target virtual(w) nowait\n"
                "        break\n"
            )

    def test_break_of_inner_loop_allowed(self):
        out = compile_source(
            "def f():\n"
            "    #omp target virtual(w) nowait\n"
            "    if True:\n"
            "        for i in range(3):\n"
            "            break\n"
        )
        assert "run_on" in out


class TestAssociationErrors:
    def test_block_pragma_at_end_of_body(self):
        with pytest.raises(DirectiveSyntaxError):
            compile_source("def f():\n    x = 1\n    #omp target virtual(w) nowait\n")

    def test_block_pragma_with_mismatched_indent(self):
        with pytest.raises(DirectiveSyntaxError):
            compile_source(
                "def f():\n"
                "    x = 1\n"
                "        #omp target virtual(w) nowait\n"
                "    y = 2\n"
            )

    def test_trailing_barrier_attaches_to_enclosing_body(self):
        out = compile_source(
            "def f():\n"
            "    x = 1\n"
            "    #omp barrier\n"
        )
        tree = ast.parse(out)
        f = tree.body[0]
        assert isinstance(f.body[-1], ast.Expr)
        assert "barrier" in ast.unparse(f.body[-1])

    def test_class_body_pragma_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            compile_source(
                "class C:\n"
                "    #omp target virtual(w) nowait\n"
                "    x = 1\n"
            )

    def test_pragma_in_method_ok(self):
        out = compile_source(
            "class C:\n"
            "    def m(self):\n"
            "        #omp target virtual(w) nowait\n"
            "        self.work()\n"
        )
        assert "run_on" in out


class TestForTransform:
    def test_loop_body_lifted(self):
        out = compile_source(
            "def f(data):\n"
            "    #omp for schedule(dynamic, 3)\n"
            "    for item in data:\n"
            "        handle(item)\n"
        )
        assert "def __omp_loop_body_0(item):" in out
        assert "schedule='dynamic'" in out and "chunk=3" in out

    def test_reduction_renames_and_folds(self):
        out = compile_source(
            "def f(n):\n"
            "    total = 0\n"
            "    #omp for reduction(+:total)\n"
            "    for i in range(n):\n"
            "        total += i\n"
            "    return total\n"
        )
        assert "identity_for('+')" in out
        assert "__repro_omp__.REDUCTIONS['+'](total" in out
        assert "omp_get_thread_num() == 0" in out

    def test_tuple_target_unpacked(self):
        out = compile_source(
            "def f(pairs):\n"
            "    #omp for\n"
            "    for a, b in pairs:\n"
            "        use(a, b)\n"
        )
        assert "__omp_item_0" in out
        assert "a, b = __omp_item_0" in out or "(a, b) = __omp_item_0" in out

    def test_continue_becomes_return(self):
        out = compile_source(
            "def f(n):\n"
            "    #omp for\n"
            "    for i in range(n):\n"
            "        if i % 2:\n"
            "            continue\n"
            "        work(i)\n"
        )
        tree = ast.parse(out)
        body_fn = next(
            n for n in ast.walk(tree)
            if isinstance(n, ast.FunctionDef) and n.name.startswith("__omp_loop_body")
        )
        assert any(isinstance(n, ast.Return) for n in ast.walk(body_fn))

    def test_continue_in_nested_loop_kept(self):
        out = compile_source(
            "def f(n):\n"
            "    #omp for\n"
            "    for i in range(n):\n"
            "        for j in range(i):\n"
            "            continue\n"
        )
        assert "continue" in out

    def test_for_requires_loop(self):
        with pytest.raises(DirectiveSyntaxError):
            compile_source("def f():\n    #omp for\n    x = 1\n")

    def test_break_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            compile_source(
                "def f(n):\n"
                "    #omp for\n"
                "    for i in range(n):\n"
                "        break\n"
            )

    def test_orelse_preserved(self):
        out = compile_source(
            "def f(n):\n"
            "    #omp for\n"
            "    for i in range(n):\n"
            "        work(i)\n"
            "    else:\n"
            "        done()\n"
        )
        assert "done()" in out


class TestOtherConstructs:
    def test_critical_becomes_with(self):
        out = compile_source(
            "def f():\n"
            "    #omp critical(mylock)\n"
            "    shared()\n"
        )
        assert "with __repro_omp__.critical('mylock'):" in out

    def test_parallel_lifting(self):
        out = compile_source(
            "def f():\n"
            "    #omp parallel num_threads(4)\n"
            "    work()\n"
        )
        assert "__repro_omp__.parallel(__omp_parallel_0, num_threads=4)" in out

    def test_single_and_master(self):
        out = compile_source(
            "def f():\n"
            "    #omp single nowait\n"
            "    a()\n"
            "    #omp master\n"
            "    b()\n"
        )
        assert "single(__omp_single_0, nowait=True)" in out
        assert "master(__omp_master_0)" in out

    def test_sections_split(self):
        out = compile_source(
            "def f():\n"
            "    #omp sections\n"
            "    if True:\n"
            "        #omp section\n"
            "        a()\n"
            "        #omp section\n"
            "        b()\n"
        )
        assert "sections([__omp_section_0, __omp_section_1]" in out

    def test_first_section_implicit(self):
        out = compile_source(
            "def f():\n"
            "    #omp sections\n"
            "    if True:\n"
            "        a()\n"
            "        #omp section\n"
            "        b()\n"
        )
        assert "sections([__omp_section_0, __omp_section_1]" in out

    def test_stray_section_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            compile_source("def f():\n    #omp section\n    a()\n")

    def test_wait_statement(self):
        out = compile_source("def f():\n    #omp wait(grp)\n    pass\n")
        assert "wait_for('grp'" in out

    def test_stacked_pragmas_nest(self):
        out = compile_source(
            "def f():\n"
            "    #omp target virtual(w) nowait\n"
            "    #omp critical\n"
            "    shared()\n"
        )
        tree = ast.parse(out)
        region = next(
            n for n in ast.walk(tree)
            if isinstance(n, ast.FunctionDef) and n.name.startswith("__omp_region")
        )
        assert isinstance(region.body[0], ast.With)


class TestIdempotentWithoutPragmas:
    def test_plain_source_passes_through(self):
        src = "def f(x):\n    return x + 1\n"
        out = compile_source(src)
        assert ast.dump(ast.parse(out)) == ast.dump(ast.parse(src))

    def test_non_pragma_comments_preserved_semantically(self):
        src = "# just a comment\nx = 1\n"
        assert "x = 1" in compile_source(src)
