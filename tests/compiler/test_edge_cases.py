"""Compiler hardening: pragmas on unusual statements and structures."""

import ast

import pytest

from repro.core import DirectiveSyntaxError, PjRuntime
from repro.compiler import compile_source, exec_omp
from hypothesis import given, settings
from hypothesis import strategies as st


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    runtime.create_worker("worker", 2)
    yield runtime
    runtime.shutdown(wait=False)


class TestUnusualBlockShapes:
    def test_pragma_on_try_statement(self, rt):
        ns = exec_omp(
            "out = []\n"
            "def f():\n"
            "    #omp target virtual(worker)\n"
            "    try:\n"
            "        out.append(1 / 0)\n"
            "    except ZeroDivisionError:\n"
            "        out.append('caught')\n"
            "f()\n",
            runtime=rt,
        )
        assert ns["out"] == ["caught"]

    def test_pragma_on_while_loop(self, rt):
        ns = exec_omp(
            "def f():\n"
            "    n = 0\n"
            "    #omp target virtual(worker)\n"
            "    while n < 5:\n"
            "        n += 1\n"
            "    return n\n"
            "result = f()\n",
            runtime=rt,
        )
        assert ns["result"] == 5

    def test_pragma_on_with_statement(self, rt):
        ns = exec_omp(
            "import contextlib\n"
            "out = []\n"
            "def f():\n"
            "    #omp target virtual(worker)\n"
            "    with contextlib.nullcontext('ctx') as v:\n"
            "        out.append(v)\n"
            "f()\n",
            runtime=rt,
        )
        assert ns["out"] == ["ctx"]

    def test_pragma_inside_loop_body(self, rt):
        ns = exec_omp(
            "out = []\n"
            "def f():\n"
            "    for i in range(3):\n"
            "        #omp target virtual(worker)\n"
            "        out.append(i * 10)\n"
            "f()\n",
            runtime=rt,
        )
        assert sorted(ns["out"]) == [0, 10, 20]

    def test_pragma_on_function_def(self, rt):
        """Lifting a def: the function is *defined* on the worker, then
        callable afterwards (data-context sharing writes it back)."""
        ns = exec_omp(
            "def f():\n"
            "    #omp target virtual(worker)\n"
            "    def helper(x):\n"
            "        return x + 1\n"
            "    return helper(41)\n"
            "result = f()\n",
            runtime=rt,
        )
        assert ns["result"] == 42

    def test_pragma_on_if_with_else_not_unwrapped(self, rt):
        # `if cond:` with an else is a real conditional, not block sugar.
        ns = exec_omp(
            "def f(flag):\n"
            "    #omp target virtual(worker)\n"
            "    if flag:\n"
            "        r = 'yes'\n"
            "    else:\n"
            "        r = 'no'\n"
            "    return r\n"
            "a = f(True)\n"
            "b = f(False)\n",
            runtime=rt,
        )
        assert (ns["a"], ns["b"]) == ("yes", "no")

    def test_augmented_assignment_writes_back(self, rt):
        ns = exec_omp(
            "def f():\n"
            "    x = 10\n"
            "    #omp target virtual(worker)\n"
            "    x += 32\n"
            "    return x\n"
            "result = f()\n",
            runtime=rt,
        )
        assert ns["result"] == 42

    def test_tuple_unpacking_assignment(self, rt):
        ns = exec_omp(
            "def f():\n"
            "    #omp target virtual(worker)\n"
            "    a, b = 1, 2\n"
            "    return a + b\n"
            "result = f()\n",
            runtime=rt,
        )
        assert ns["result"] == 3

    def test_for_over_inline_list(self, rt):
        ns = exec_omp(
            "def f():\n"
            "    seen = []\n"
            "    #omp parallel for num_threads(2)\n"
            "    for item in ['a', 'b', 'c']:\n"
            "        seen.append(item)\n"
            "    return sorted(seen)\n"
            "result = f()\n",
            runtime=rt,
        )
        assert ns["result"] == ["a", "b", "c"]

    def test_comprehension_scopes_untouched(self, rt):
        ns = exec_omp(
            "def f():\n"
            "    #omp target virtual(worker)\n"
            "    values = [i * 2 for i in range(4)]\n"
            "    return values\n"
            "result = f()\n",
            runtime=rt,
        )
        assert ns["result"] == [0, 2, 4, 6]


class TestErrorReporting:
    def test_line_number_in_directive_error(self):
        with pytest.raises(DirectiveSyntaxError) as ei:
            compile_source("x = 1\ny = 2\n#omp target nowait\nz = 3\n")
        assert ei.value.line == 3

    def test_unconsumed_pragma_reports_its_text(self):
        with pytest.raises(DirectiveSyntaxError) as ei:
            compile_source("def f():\n    pass\n    #omp critical\n")
        assert "critical" in str(ei.value)

    def test_async_def_body_pragmas_unsupported_gracefully(self):
        # async functions parse; a lifted region containing `await` inside
        # is rejected (cannot cross the region boundary).
        with pytest.raises(DirectiveSyntaxError):
            compile_source(
                "async def f():\n"
                "    #omp target virtual(w) nowait\n"
                "    await something()\n"
            )


class TestLexerProperties:
    @given(
        st.permutations(
            ["nowait", "if(n > 1)", "firstprivate(a, b)", "private(c)"]
        )
    )
    @settings(max_examples=24, deadline=None)
    def test_target_clause_order_irrelevant(self, clauses):
        from repro.compiler import parse_directive

        text = "target virtual(w) " + " ".join(clauses)
        d = parse_directive(text)
        assert d.directive.target.name == "w"
        assert d.directive.mode.value == "nowait"
        assert d.directive.if_condition == "n > 1"
        sharings = {c.sharing.value: c.variables for c in d.directive.data_clauses}
        assert sharings["firstprivate"] == ("a", "b")
        assert sharings["private"] == ("c",)

    @given(st.text(alphabet="abcdefgh_", min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_directive_str_roundtrip(self, name):
        from repro.compiler import parse_directive

        d = parse_directive(f"target virtual({name}) await")
        reparsed = parse_directive(str(d.directive))
        assert reparsed.directive == d.directive
