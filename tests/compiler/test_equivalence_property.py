"""Property: compiling pragmas never changes sequential semantics.

The paper's design rule — "adding directives does not influence the original
correctness of the sequential execution" — as a hypothesis property: for
randomly generated straight-line integer programs, the pragma-compiled
version (dispatched through a real worker target with a *waiting* mode)
computes exactly the same final variable state as the plain program.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import exec_omp
from repro.core import PjRuntime

VARS = ["a", "b", "c", "d"]

# One generated statement: v = <expr over vars/consts>
_expr = st.one_of(
    st.integers(min_value=-50, max_value=50).map(str),
    st.sampled_from(VARS),
    st.tuples(
        st.sampled_from(VARS),
        st.sampled_from(["+", "-", "*"]),
        st.integers(min_value=-9, max_value=9),
    ).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
    st.tuples(st.sampled_from(VARS), st.sampled_from(VARS)).map(
        lambda t: f"({t[0]} + {t[1]})"
    ),
)
_stmt = st.tuples(st.sampled_from(VARS), _expr).map(lambda t: f"{t[0]} = {t[1]}")
_programs = st.lists(_stmt, min_size=1, max_size=8)


def build(body_stmts: list[str], pragma: str | None, split_at: int) -> str:
    lines = ["def prog():", "    a = 1", "    b = 2", "    c = 3", "    d = 4"]
    head, tail = body_stmts[:split_at], body_stmts[split_at:]
    for s in head:
        lines.append(f"    {s}")
    if pragma is not None and tail:
        lines.append(f"    {pragma}")
        lines.append("    if True:")
        for s in tail:
            lines.append(f"        {s}")
    else:
        for s in tail:
            lines.append(f"    {s}")
    lines.append("    return (a, b, c, d)")
    lines.append("result = prog()")
    return "\n".join(lines) + "\n"


class TestSequentialEquivalence:
    @given(_programs, st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_target_default_matches_plain(self, stmts, split):
        runtime = PjRuntime()
        runtime.create_worker("worker", 2)
        try:
            split = min(split, len(stmts))
            plain = build(stmts, None, split)
            pragmad = build(stmts, "#omp target virtual(worker)", split)
            expected = {}
            exec(compile(plain, "<plain>", "exec"), expected)
            got = exec_omp(pragmad, runtime=runtime)
            assert got["result"] == expected["result"]
        finally:
            runtime.shutdown(wait=False)

    @given(_programs, st.integers(min_value=0, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_parallel_team_of_one_matches_plain(self, stmts, split):
        """A 1-thread parallel region must be exactly sequential."""
        runtime = PjRuntime()
        runtime.create_worker("worker", 1)
        try:
            split = min(split, len(stmts))
            plain = build(stmts, None, split)
            pragmad = build(stmts, "#omp parallel num_threads(1)", split)
            expected = {}
            exec(compile(plain, "<plain>", "exec"), expected)
            got = exec_omp(pragmad, runtime=runtime)
            assert got["result"] == expected["result"]
        finally:
            runtime.shutdown(wait=False)

    @given(
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=1, max_value=4),
        st.sampled_from(["static", "dynamic", "guided"]),
        st.one_of(st.none(), st.integers(min_value=1, max_value=7)),
    )
    @settings(max_examples=30, deadline=None)
    def test_parallel_for_sum_matches_plain(self, n, threads, schedule, chunk):
        runtime = PjRuntime()
        try:
            sched = schedule if chunk is None else f"{schedule}, {chunk}"
            src = (
                "def prog(n):\n"
                "    total = 0\n"
                f"    #omp parallel for num_threads({threads}) "
                f"schedule({sched}) reduction(+:total)\n"
                "    for i in range(n):\n"
                "        total += 3 * i - 1\n"
                "    return total\n"
            )
            got = exec_omp(src, runtime=runtime)
            assert got["prog"](n) == sum(3 * i - 1 for i in range(n))
        finally:
            runtime.shutdown(wait=False)
