"""Tests for the collapse(n) clause."""

import pytest

from repro.core import DirectiveSyntaxError, PjRuntime
from repro.compiler import compile_source, exec_omp, parse_directive


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    yield runtime
    runtime.shutdown(wait=False)


class TestParsing:
    def test_collapse_clause(self):
        d = parse_directive("for collapse(2) schedule(dynamic)")
        assert d.collapse == 2

    def test_collapse_default_one(self):
        assert parse_directive("for").collapse == 1

    def test_collapse_validation(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("for collapse(0)")
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("for collapse(two)")


class TestTransform:
    def test_collapse2_flattens(self):
        out = compile_source(
            "def f(a, b):\n"
            "    #omp parallel for collapse(2)\n"
            "    for i in range(a):\n"
            "        for j in range(b):\n"
            "            work(i, j)\n"
        )
        assert "collapse_product(range(a), range(b))" in out
        assert "(i, j)" in out or "i, j =" in out

    def test_imperfect_nest_rejected(self):
        with pytest.raises(DirectiveSyntaxError) as ei:
            compile_source(
                "def f(a, b):\n"
                "    #omp for collapse(2)\n"
                "    for i in range(a):\n"
                "        setup(i)\n"
                "        for j in range(b):\n"
                "            work(i, j)\n"
            )
        assert "perfectly nested" in str(ei.value)

    def test_non_rectangular_rejected(self):
        with pytest.raises(DirectiveSyntaxError) as ei:
            compile_source(
                "def f(a):\n"
                "    #omp for collapse(2)\n"
                "    for i in range(a):\n"
                "        for j in range(i):\n"
                "            work(i, j)\n"
            )
        assert "outer loop variables" in str(ei.value)

    def test_orelse_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            compile_source(
                "def f(a, b):\n"
                "    #omp for collapse(2)\n"
                "    for i in range(a):\n"
                "        for j in range(b):\n"
                "            work(i, j)\n"
                "    else:\n"
                "        done()\n"
            )


class TestExecution:
    def test_collapse2_matches_sequential(self, rt):
        ns = exec_omp(
            "def f(a, b):\n"
            "    total = 0\n"
            "    #omp parallel for num_threads(3) collapse(2) reduction(+:total)\n"
            "    for i in range(a):\n"
            "        for j in range(b):\n"
            "            total += i * 10 + j\n"
            "    return total\n",
            runtime=rt,
        )
        expected = sum(i * 10 + j for i in range(5) for j in range(7))
        assert ns["f"](5, 7) == expected

    def test_collapse3(self, rt):
        ns = exec_omp(
            "def f(n):\n"
            "    cells = []\n"
            "    #omp parallel for num_threads(2) collapse(3)\n"
            "    for i in range(n):\n"
            "        for j in range(n):\n"
            "            for k in range(n):\n"
            "                cells.append((i, j, k))\n"
            "    return sorted(cells)\n",
            runtime=rt,
        )
        n = 3
        assert ns["f"](n) == sorted(
            (i, j, k) for i in range(n) for j in range(n) for k in range(n)
        )

    def test_collapse_improves_balance(self, rt):
        """The point of collapse: a 2-iteration outer loop over 4 threads
        only uses 2 threads; collapsed, all 4 participate."""
        ns = exec_omp(
            "import repro.openmp as omp_api\n"
            "import threading\n"
            "lock = threading.Lock()\n"
            "def f(workers_seen):\n"
            "    #omp parallel for num_threads(4) collapse(2) schedule(dynamic, 1)\n"
            "    for i in range(2):\n"
            "        for j in range(8):\n"
            "            with lock:\n"
            "                workers_seen.add(omp_api.omp_get_thread_num())\n"
            "            import time\n"
            "            time.sleep(0.005)\n",
            runtime=rt,
        )
        seen: set = set()
        ns["f"](seen)
        assert len(seen) >= 3  # more than the 2 the outer loop alone offers

    def test_collapse_over_lists(self, rt):
        ns = exec_omp(
            "def f(rows, cols):\n"
            "    out = []\n"
            "    #omp parallel for num_threads(2) collapse(2)\n"
            "    for r in rows:\n"
            "        for c in cols:\n"
            "            out.append(r + c)\n"
            "    return sorted(out)\n",
            runtime=rt,
        )
        assert ns["f"](["a", "b"], ["x", "y"]) == ["ax", "ay", "bx", "by"]
