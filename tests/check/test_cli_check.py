"""Satellite: ``python -m repro check --seed N`` replays byte-for-byte.

The event stream of a stress run is nondeterministic (real threads), but the
*report* is a pure function of the seed: violations carry only
harness-assigned labels, so the same seed must print the same bytes."""

from __future__ import annotations

from repro.cli import main

REPLAY_ARGS = [
    "check",
    "--seed", "7",
    "--iterations", "1",
    "--ops", "40",
    "--inject", "lost-dequeue",
]


def run_cli(capsys, argv):
    code = main(argv)
    return code, capsys.readouterr().out


def test_injected_violation_replays_byte_for_byte(capsys):
    code_a, out_a = run_cli(capsys, REPLAY_ARGS)
    code_b, out_b = run_cli(capsys, REPLAY_ARGS)
    assert code_a == code_b == 1
    assert out_a == out_b
    assert "[enqueue-unresolved]" in out_a
    assert "replay with --seed 7" in out_a


def test_clean_run_exits_zero_and_reports_ok(capsys):
    code, out = run_cli(
        capsys, ["check", "--seed", "1234", "--iterations", "1", "--ops", "40"]
    )
    assert code == 0
    assert "OK: 0 violations" in out
    assert "seed=1234" in out


def test_bare_inject_flag_defaults_to_lying_exec_outcome(capsys):
    code, out = run_cli(
        capsys,
        ["check", "--seed", "3", "--iterations", "1", "--ops", "40", "--inject"],
    )
    assert code == 1
    assert "[outcome-lie]" in out
    assert "inject=lying-exec-outcome" in out
