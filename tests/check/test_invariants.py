"""Unit tests of the trace-invariant verifier over synthetic event streams.

Each invariant gets a minimal stream that breaks exactly it, plus the
near-miss stream that must stay clean — the verifier's false-positive rate
matters as much as its recall."""

from __future__ import annotations

from repro.check import (
    Violation,
    crosscheck_outcomes,
    verify_events,
    verify_quiescence,
)
from repro.core.region import TargetRegion
from repro.obs.events import EventKind, TraceEvent

K = EventKind


def ev(kind, ts, *, thread="t0", target="w", region=None, name=None, arg=None):
    return TraceEvent(kind, ts, thread, target, region, name, arg)


def lifecycle(region=1, name="r", outcome="completed", ts=0):
    """A complete, healthy ENQUEUE→DEQUEUE→EXEC chain."""
    return [
        ev(K.ENQUEUE, ts + 0, region=region, name=name),
        ev(K.DEQUEUE, ts + 1, region=region, name=name),
        ev(K.EXEC_BEGIN, ts + 2, region=region, name=name),
        ev(K.EXEC_END, ts + 3, region=region, name=name, arg=outcome),
    ]


def invariants(violations):
    return sorted({v.invariant for v in violations})


def test_clean_stream_has_no_violations():
    events = lifecycle() + [ev(K.QUEUE_DEPTH, 10, arg=0)]
    assert verify_events(events) == []


def test_enqueue_without_dequeue_or_cancel_is_flagged():
    events = [ev(K.ENQUEUE, 0, region=1, name="lost")]
    out = verify_events(events)
    assert invariants(out) == ["enqueue-unresolved"]
    assert "lost" in out[0].detail


def test_cancel_resolves_an_enqueue():
    events = [
        ev(K.ENQUEUE, 0, region=1, name="r"),
        ev(K.CANCEL, 1, region=1, name="r"),
    ]
    assert verify_events(events) == []


def test_cancelled_then_corpse_dequeued_is_clean():
    # Shutdown cancelled a queued region; the worker later discards the
    # corpse: DEQUEUE without an EXEC span is the correct shape.
    events = [
        ev(K.ENQUEUE, 0, region=1, name="r"),
        ev(K.CANCEL, 1, region=1, name="r"),
        ev(K.DEQUEUE, 2, region=1, name="r"),
    ]
    assert verify_events(events) == []


def test_dequeue_without_enqueue_is_flagged():
    events = [ev(K.DEQUEUE, 0, region=1, name="ghost")]
    assert invariants(verify_events(events)) == ["dequeue-without-enqueue"]


def test_exec_without_any_handoff_is_flagged():
    events = [
        ev(K.EXEC_BEGIN, 0, region=1, name="r"),
        ev(K.EXEC_END, 1, region=1, name="r", arg="completed"),
    ]
    assert invariants(verify_events(events)) == ["exec-without-dequeue"]


def test_caller_runs_reject_legitimizes_queueless_exec():
    events = [
        ev(K.REJECT, 0, region=1, name="r", arg="caller_runs"),
        ev(K.EXEC_BEGIN, 1, region=1, name="r"),
        ev(K.EXEC_END, 2, region=1, name="r", arg="completed"),
    ]
    assert verify_events(events) == []


def test_plain_reject_does_not_legitimize_exec():
    events = [
        ev(K.REJECT, 0, region=1, name="r", arg="reject"),
        ev(K.EXEC_BEGIN, 1, region=1, name="r"),
        ev(K.EXEC_END, 2, region=1, name="r", arg="completed"),
    ]
    assert invariants(verify_events(events)) == ["exec-without-dequeue"]


def test_inline_elide_legitimizes_queueless_exec():
    events = [
        ev(K.INLINE_ELIDE, 0, region=1, name="r"),
        ev(K.EXEC_BEGIN, 1, region=1, name="r"),
        ev(K.EXEC_END, 2, region=1, name="r", arg="completed"),
    ]
    assert verify_events(events) == []


def test_double_exec_is_flagged():
    events = lifecycle() + [
        ev(K.EXEC_BEGIN, 10, region=1, name="r"),
        ev(K.EXEC_END, 11, region=1, name="r", arg="completed"),
    ]
    assert "double-exec" in invariants(verify_events(events))


def test_exec_after_cancel_with_fabricated_outcome_is_flagged():
    events = [
        ev(K.ENQUEUE, 0, region=1, name="r"),
        ev(K.CANCEL, 1, region=1, name="r"),
        ev(K.DEQUEUE, 2, region=1, name="r"),
        ev(K.EXEC_BEGIN, 3, region=1, name="r"),
        ev(K.EXEC_END, 4, region=1, name="r", arg="completed"),
    ]
    assert invariants(verify_events(events)) == ["exec-after-cancel"]


def test_cancel_race_stamped_cancelled_is_clean():
    # The legitimate shape of the cancel-vs-corpse-check race: the span
    # exists but truthfully records that run() no-opped.
    events = [
        ev(K.ENQUEUE, 0, region=1, name="r"),
        ev(K.DEQUEUE, 1, region=1, name="r"),
        ev(K.EXEC_BEGIN, 2, region=1, name="r"),
        ev(K.CANCEL, 3, region=1, name="r"),
        ev(K.EXEC_END, 4, region=1, name="r", arg="cancelled"),
    ]
    assert verify_events(events) == []


def test_invalid_outcome_is_flagged():
    events = lifecycle(outcome="exploded")
    assert "invalid-outcome" in invariants(verify_events(events))


def test_negative_queue_depth_is_flagged():
    events = [ev(K.QUEUE_DEPTH, 0, arg=-1)]
    assert invariants(verify_events(events)) == ["negative-depth"]


def test_unclosed_span_is_flagged():
    events = [
        ev(K.ENQUEUE, 0, region=1, name="r"),
        ev(K.DEQUEUE, 1, region=1, name="r"),
        ev(K.EXEC_BEGIN, 2, region=1, name="r"),
    ]
    assert invariants(verify_events(events)) == ["span-unclosed"]


def test_interleaved_span_close_is_flagged():
    events = lifecycle(region=1, name="a")[:3] + [
        ev(K.BARRIER_ENTER, 5, name="b"),
        ev(K.EXEC_END, 6, region=1, name="a", arg="completed"),  # out of order
        ev(K.BARRIER_EXIT, 7, name="b"),
    ]
    assert "span-mismatch" in invariants(verify_events(events))


def test_spans_nest_across_threads_independently():
    events = (
        lifecycle(region=1, name="a", ts=0)
        + [
            ev(K.ENQUEUE, 10, thread="t1", region=2, name="b"),
            ev(K.DEQUEUE, 11, thread="t1", region=2, name="b"),
            ev(K.EXEC_BEGIN, 12, thread="t1", region=2, name="b"),
            ev(K.BARRIER_ENTER, 13, thread="t1", region=2, name="b"),
            ev(K.PUMP_STEAL, 14, thread="t1", region=2, name="b"),
            ev(K.BARRIER_EXIT, 15, thread="t1", region=2, name="b"),
            ev(K.EXEC_END, 16, thread="t1", region=2, name="b", arg="completed"),
        ]
    )
    assert verify_events(events) == []


def test_violations_are_sorted_and_deduplicated():
    events = [
        ev(K.ENQUEUE, 0, region=1, name="z"),
        ev(K.ENQUEUE, 1, region=2, name="a"),
    ]
    out = verify_events(events)
    assert [v.invariant for v in out] == ["enqueue-unresolved"] * 2
    details = [v.detail for v in out]
    assert details == sorted(details)
    assert Violation("x", "d") == Violation("x", "d")


class _FakeTarget:
    def __init__(self, name, count):
        self.name = name
        self._count = count

    def work_count(self):
        return self._count


def test_quiescence_flags_leftover_work():
    out = verify_quiescence([_FakeTarget("a", 0), _FakeTarget("b", 2)])
    assert invariants(out) == ["backlog-leak"]
    assert "'b'" in out[0].detail


def test_crosscheck_flags_outcome_lie_against_region_state():
    region = TargetRegion(lambda: None, name="truth")
    region.run()  # COMPLETED
    events = [ev(K.EXEC_END, 0, region=region.seq, name="truth", arg="failed")]
    out = crosscheck_outcomes(events, regions=[("truth", region)])
    assert invariants(out) == ["outcome-lie"]


def test_crosscheck_accepts_matching_outcomes_and_skips_unexecuted():
    done = TargetRegion(lambda: None, name="ok")
    done.run()
    never_ran = TargetRegion(lambda: None, name="withdrawn")
    never_ran.cancel()
    events = [ev(K.EXEC_END, 0, region=done.seq, name="ok", arg="completed")]
    assert crosscheck_outcomes(
        events, regions=[("ok", done), ("withdrawn", never_ran)]
    ) == []


def test_crosscheck_flags_nonterminal_region():
    pending = TargetRegion(lambda: None, name="stuck")
    out = crosscheck_outcomes([], regions=[("stuck", pending)])
    assert invariants(out) == ["nonterminal-at-quiescence"]


def test_crosscheck_audits_instrumented_callables():
    events = [ev(K.EXEC_END, 0, region=-5, name="cb", arg="completed")]
    lied = crosscheck_outcomes(events, callables={-5: ("cb", "failed")})
    assert invariants(lied) == ["outcome-lie"]
    missing = crosscheck_outcomes([], callables={-5: ("cb", "completed")})
    assert invariants(missing) == ["missing-exec-end"]
