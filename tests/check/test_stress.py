"""The stress harness end to end: clean runs verify clean, every fault
tamper is detected, and the fault hooks behave as specified."""

from __future__ import annotations

import random

import pytest

from repro.check import (
    PROFILES,
    TAMPERS,
    ForceQueueFull,
    JitterHook,
    render_report,
    run_check,
    run_iteration,
)


def test_smoke_iteration_verifies_clean():
    outcome = run_iteration(PROFILES["smoke"], seed=5, index=0, ops=50)
    assert outcome.ok, [v.render() for v in outcome.violations]
    assert outcome.label == "0"


def test_run_check_report_is_deterministic_and_clean():
    first = run_check(profile="smoke", seed=9, iterations=1, ops=40)
    second = run_check(profile="smoke", seed=9, iterations=1, ops=40)
    assert first.ok and second.ok
    assert render_report(first) == render_report(second)
    assert "OK: 0 violations" in render_report(first)


@pytest.mark.parametrize("mode,expected", [
    ("lying-exec-outcome", "outcome-lie"),
    ("lost-dequeue", "enqueue-unresolved"),
    ("negative-depth", "negative-depth"),
])
def test_injected_faults_are_detected(mode, expected):
    result = run_check(profile="smoke", seed=7, iterations=1, ops=40, inject=mode)
    assert not result.ok
    assert expected in {v.invariant for v in result.violations}
    # Only the tampered iteration fails; the tamper must not bleed.
    assert result.phases[0].violations


def test_tamper_registry_matches_cli_choices():
    assert sorted(TAMPERS) == ["lost-dequeue", "lying-exec-outcome", "negative-depth"]


def test_force_queue_full_only_fires_when_armed_and_scoped():
    hook = ForceQueueFull(random.Random(1), ("w0",), probability=1.0)
    assert hook("w0") is False  # not armed
    hook.active = True
    assert hook("w0") is True
    assert hook("other") is False  # out of scope
    assert hook.hits == 1


def test_jitter_hook_is_bounded_and_callable():
    hook = JitterHook(random.Random(2), probability=1.0, max_sleep_s=0.0)
    for _ in range(50):
        hook("post", "w0")  # must never raise, sleep bounded by max_sleep_s
