"""Isolation for the check suite: the trace session is process-global and
the stress harness starts/stops it, so every test gets a clean session and
leaves none of the injection hooks armed."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import injection


@pytest.fixture(autouse=True)
def _clean_session():
    obs.disable()
    obs.session().clear()
    injection.uninstall()
    yield
    obs.disable()
    obs.session().clear()
    obs.session().buffer_size = obs.DEFAULT_BUFFER_SIZE
    injection.uninstall()
