"""Stolen work resolves exactly once.

ISSUE 9's safety bar for the adaptive policies: under seeded stress with
stealing and dequeue batching forced on, every stolen ``ENQUEUE`` still
resolves exactly once — no double-exec, no exec-after-cancel — and the
``PUMP_STEAL`` attribution names the victim and the thief correctly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

from repro import obs
from repro.check import PROFILES, run_iteration, run_policy_phase
from repro.core.runtime import PjRuntime
from repro.obs import EventKind


def _policied(profile, **overrides):
    return replace(PROFILES[profile], steal=True, batch_max=4, **overrides)


def test_stress_iteration_clean_with_steal_and_batching_forced_on():
    prof = _policied("smoke")
    for index in (0, 1):
        outcome = run_iteration(prof, seed=4242, index=index)
        assert outcome.ok, [str(v) for v in outcome.violations]


def test_stress_iteration_clean_with_all_three_policies():
    prof = _policied("smoke", autoscale=True)
    outcome = run_iteration(prof, seed=99, index=0)
    assert outcome.ok, [str(v) for v in outcome.violations]


def test_policy_phase_is_clean():
    outcome = run_policy_phase(PROFILES["smoke"], seed=7)
    assert outcome.label == "policy"
    assert outcome.ok, [str(v) for v in outcome.violations]


def test_stolen_enqueue_resolves_exactly_once():
    rt = PjRuntime()
    try:
        obs.enable()
        rt.create_worker("victim", 1, steal=True, batch_max=4)
        rt.create_worker("thief", 1, steal=True, batch_max=4)
        gate = threading.Event()
        rt.get_target("victim").post(gate.wait)
        time.sleep(0.05)

        runs: dict[str, int] = {}
        handles = []
        for k in range(24):
            label = f"steal-op{k:02d}"
            runs[label] = 0

            def body(label=label) -> None:
                runs[label] += 1

            handles.append(rt.invoke_target_block("victim", body, "nowait"))
        time.sleep(0.3)
        gate.set()
        for h in handles:
            assert h.wait(timeout=10.0)

        assert all(count == 1 for count in runs.values()), runs

        events = obs.session().events()
        steals = [
            e for e in events
            if e.kind is EventKind.PUMP_STEAL
            and isinstance(e.arg, dict)
            and e.arg.get("mode") == "steal"
        ]
        assert steals, "wedging the victim's only lane must force steals"
        for e in steals:
            assert e.arg["victim"] == "victim"
            assert e.arg["thief"] == "thief"
        # Lifecycle bookkeeping still balances on the victim target: one
        # DEQUEUE per ENQUEUE even though another pool ran some of them.
        enq = sum(
            1 for e in events
            if e.kind is EventKind.ENQUEUE and e.target == "victim"
            and e.region is not None
        )
        deq = sum(
            1 for e in events
            if e.kind is EventKind.DEQUEUE and e.target == "victim"
            and e.region is not None
        )
        assert enq == deq == 24
    finally:
        rt.shutdown(wait=True)


def test_cancelled_work_is_never_stolen():
    rt = PjRuntime()
    try:
        rt.create_worker("victim", 1, steal=True)
        rt.create_worker("thief", 1, steal=True)
        gate = threading.Event()
        rt.get_target("victim").post(gate.wait)
        time.sleep(0.05)

        ran = []
        handles = [
            rt.invoke_target_block("victim", (lambda: ran.append(1)), "nowait")
            for _ in range(8)
        ]
        # Cancel while queued, before releasing the victim's lane; a steal
        # that raced in earlier already resolved its region, so cancel is a
        # no-op there — an item must be executed XOR cancelled, never both.
        for h in handles:
            h.request_cancel()
        gate.set()
        for h in handles:
            h.wait(timeout=10.0)
        executed = len(ran)
        cancelled = sum(1 for h in handles if h.state.name == "CANCELLED")
        assert executed + cancelled == 8
    finally:
        rt.shutdown(wait=True)
