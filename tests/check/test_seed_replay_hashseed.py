"""Seeded checks replay byte-for-byte.

``repro check --seed N`` promises that re-running with the printed seed
reproduces the report exactly.  That promise breaks silently if any part
of the pipeline leans on hash ordering (set iteration, dict-of-object
keys) or other per-process state — so the strongest form of the test runs
the CLI in subprocesses with *different* ``PYTHONHASHSEED`` values and
demands identical stdout bytes.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.check import render_report, run_check

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run_cli(hashseed: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [
            sys.executable, "-m", "repro", "check",
            "--seed", "7", "--iterations", "1", "--ops", "30",
            "--inject", "lost-dequeue",
        ],
        capture_output=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=120,
    )


class TestSeedReplay:
    def test_in_process_renders_are_byte_identical(self):
        a = render_report(run_check(profile="smoke", seed=11, iterations=1, ops=40))
        b = render_report(run_check(profile="smoke", seed=11, iterations=1, ops=40))
        assert a.encode() == b.encode()

    def test_cli_is_stable_across_hash_seeds(self):
        # The tamper guarantees a violation report (the part with the most
        # rendering surface), and distinct hash seeds shuffle every hash-
        # ordered container in the process.
        a = _run_cli("0")
        b = _run_cli("12345")
        assert a.returncode == 1, a.stdout.decode() + a.stderr.decode()
        assert b.returncode == 1
        assert a.stdout == b.stdout
