"""The worker agent: handshake, task/ctrl protocol, subprocess bring-up."""

from __future__ import annotations

import os
import time

import pytest

from repro.cluster.agent import ClusterAgent, announce_line
from repro.cluster.transport import connect, expect_hello, parse_endpoint, send_hello
from repro.dist import wire

from tests.dist import bodies


def open_channel(agent, role, *, slot=0, target_name="t"):
    """Connect one channel to an in-process agent, handshake included."""
    tr = connect(agent.host, agent.port)
    send_hello(tr, role, target_name=target_name, slot=slot)
    hello = expect_hello(tr)
    assert hello.role == "agent"
    return tr


class TestHandshake:
    def test_agent_answers_with_versioned_hello(self):
        with ClusterAgent() as agent:
            tr = connect(agent.host, agent.port)
            try:
                send_hello(tr, "task", target_name="t", slot=0)
                hello = expect_hello(tr)
                assert hello.version == wire.PROTOCOL_VERSION
                assert hello.role == "agent"
                assert hello.meta["pid"] == os.getpid()  # in-process agent
            finally:
                tr.close()

    def test_version_mismatch_answered_then_closed(self):
        # The agent replies with its own hello (so the stale client can
        # raise a structured ProtocolVersionError too), then hangs up —
        # no task loop ever starts.
        with ClusterAgent() as agent:
            tr = connect(agent.host, agent.port)
            try:
                tr.send(wire.HelloMsg(999, "task", "t", 0, {}))
                reply = tr.recv()
                assert isinstance(reply, wire.HelloMsg)
                assert reply.version == wire.PROTOCOL_VERSION
                assert tr.poll(5.0)
                with pytest.raises(EOFError):
                    tr.recv()
            finally:
                tr.close()

    def test_garbage_first_frame_closes_the_connection(self):
        with ClusterAgent() as agent:
            tr = connect(agent.host, agent.port)
            try:
                tr.send({"not": "a hello"})
                assert tr.poll(5.0)
                with pytest.raises(EOFError):
                    tr.recv()
            finally:
                tr.close()


class TestTaskProtocol:
    def test_clock_probe_and_task_round_trip(self):
        with ClusterAgent() as agent:
            tr = open_channel(agent, "task")
            try:
                tr.send(wire.SyncMsg(123))
                ack = tr.recv()
                assert isinstance(ack, wire.SyncAck)
                assert ack.pid == os.getpid()

                blob = wire.dumps((bodies.square, (7,), {}))
                tr.send(wire.ClusterTaskMsg(1, "sq", None, blob, False, None))
                result = tr.recv()
                assert isinstance(result, wire.ResultMsg)
                assert result.seq == 1 and result.ok
                assert wire.loads(result.blob) == 49
                assert agent.tasks_executed == 1
            finally:
                tr.close()

    def test_tagged_task_sends_tag_done_before_result(self):
        with ClusterAgent() as agent:
            tr = open_channel(agent, "task")
            try:
                blob = wire.dumps((bodies.square, (3,), {}))
                tr.send(wire.ClusterTaskMsg(5, "sq", None, blob, False, "grp"))
                first = tr.recv()
                assert isinstance(first, wire.TagDoneMsg)
                assert (first.seq, first.tag, first.outcome) == (5, "grp", "completed")
                result = tr.recv()
                assert isinstance(result, wire.ResultMsg) and result.ok
            finally:
                tr.close()

    def test_failing_body_reports_failed_tag_and_error_result(self):
        with ClusterAgent() as agent:
            tr = open_channel(agent, "task")
            try:
                blob = wire.dumps((bodies.boom, ("kapow",), {}))
                tr.send(wire.ClusterTaskMsg(6, "boom", None, blob, False, "grp"))
                first = tr.recv()
                assert isinstance(first, wire.TagDoneMsg)
                assert first.outcome == "failed"
                result = tr.recv()
                assert isinstance(result, wire.ResultMsg) and not result.ok
                exc = wire.unpack_exception(
                    result.exc_blob, result.exc_text, result.exc_tb
                )
                assert isinstance(exc, ValueError)
            finally:
                tr.close()

    def test_unknown_message_is_skipped_not_fatal(self):
        with ClusterAgent() as agent:
            tr = open_channel(agent, "task")
            try:
                tr.send(wire.PongMsg(0, 0))  # nonsense on a task channel
                blob = wire.dumps((bodies.square, (2,), {}))
                tr.send(wire.ClusterTaskMsg(9, "sq", None, blob, False, None))
                result = tr.recv()
                assert isinstance(result, wire.ResultMsg) and result.ok
            finally:
                tr.close()


class TestCtrlProtocol:
    def test_ping_pong(self):
        with ClusterAgent() as agent:
            tr = open_channel(agent, "ctrl")
            try:
                tr.send(wire.PingMsg(42))
                pong = tr.recv()
                assert isinstance(pong, wire.PongMsg)
                assert pong.sent_ns == 42
            finally:
                tr.close()

    def test_cancel_reaches_the_executing_region(self):
        with ClusterAgent() as agent:
            task = open_channel(agent, "task", slot=1)
            ctrl = open_channel(agent, "ctrl", slot=1)
            try:
                blob = wire.dumps((bodies.cooperative_loop, (30.0,), {}))
                task.send(wire.ClusterTaskMsg(3, "loop", None, blob, False, None))
                time.sleep(0.2)  # let the body start polling its token
                ctrl.send(wire.CancelMsg(3))
                result = task.recv()
                assert result.ok
                assert wire.loads(result.blob) == "cancelled"
            finally:
                task.close()
                ctrl.close()


class TestSlotCap:
    def test_max_slots_refuses_extra_task_connections(self):
        with ClusterAgent(max_slots=1) as agent:
            first = open_channel(agent, "task", slot=0)
            try:
                second = connect(agent.host, agent.port)
                try:
                    send_hello(second, "task", target_name="t", slot=1)
                    # Refused before the agent's hello: the reply never comes.
                    with pytest.raises((EOFError, Exception)):
                        expect_hello(second, timeout=5.0)
                finally:
                    second.close()
            finally:
                first.close()


class TestSpawnedAgent:
    def test_announce_line_format(self):
        line = announce_line("127.0.0.1", 1234)
        assert "listening on 127.0.0.1:1234" in line
        assert f"protocol {wire.PROTOCOL_VERSION}" in line

    def test_spawn_connect_and_close(self, agent):
        assert agent.alive()
        tr = connect(*parse_endpoint(agent.endpoint))
        try:
            send_hello(tr, "task", target_name="t", slot=0)
            hello = expect_hello(tr)
            assert hello.meta["pid"] == agent.pid  # a real separate process
            tr.send(wire.SyncMsg(1))
            ack = tr.recv()
            assert ack.pid == agent.pid
        finally:
            tr.close()
        agent.close()
        assert not agent.alive()
