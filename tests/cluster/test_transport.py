"""Transport layer: framing, failure mapping, the versioned hello."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.core.errors import ProtocolVersionError, RuntimeStateError
from repro.cluster.transport import (
    MAX_FRAME_BYTES,
    TcpTransport,
    connect,
    expect_hello,
    listen,
    loopback_pair,
    parse_endpoint,
    send_hello,
)
from repro.dist import wire


def tcp_pair():
    """A connected (client, server) TcpTransport pair on loopback."""
    listener = listen()
    client = connect(listener.host, listener.port)
    server = listener.accept(timeout=5.0)
    listener.close()
    assert server is not None
    return client, server


class TestLoopback:
    def test_round_trip_pickles(self):
        a, b = loopback_pair()
        a.send({"k": [1, 2, 3]})
        assert b.recv() == {"k": [1, 2, 3]}
        b.send(wire.PingMsg(7))
        msg = a.recv()
        assert isinstance(msg, wire.PingMsg) and msg.sent_ns == 7

    def test_poll_semantics(self):
        a, b = loopback_pair()
        assert not b.poll(0)
        a.send("x")
        assert b.poll(0)
        b.recv()
        assert not b.poll(0.01)

    def test_close_maps_to_pipe_failures(self):
        a, b = loopback_pair()
        a.send("last words")
        a.close()
        assert b.recv() == "last words"  # drains what was queued
        assert b.poll(0)                 # a tear counts as readable
        assert b.eof
        with pytest.raises(EOFError):
            b.recv()
        with pytest.raises(OSError):
            b.send("into the void")
        with pytest.raises(OSError):
            a.send("already closed")

    def test_unpicklable_payload_raises_on_send(self):
        a, _b = loopback_pair()
        with pytest.raises(Exception):
            a.send(threading.Lock())


class TestTcp:
    def test_round_trip_and_large_frame(self):
        client, server = tcp_pair()
        try:
            client.send(list(range(1000)))
            assert server.recv() == list(range(1000))
            blob = b"x" * (1 << 20)  # 1 MiB: spans many recv chunks
            server.send(blob)
            assert client.recv() == blob
        finally:
            client.close()
            server.close()

    def test_concurrent_sends_do_not_interleave_frames(self):
        client, server = tcp_pair()
        try:
            n = 50
            payloads = [bytes([i]) * (1000 + i) for i in range(n)]
            threads = [
                threading.Thread(target=client.send, args=(p,))
                for p in payloads
            ]
            for t in threads:
                t.start()
            received = [server.recv() for _ in range(n)]
            for t in threads:
                t.join()
            assert sorted(received) == sorted(payloads)
        finally:
            client.close()
            server.close()

    def test_peer_close_maps_to_eof_and_oserror(self):
        client, server = tcp_pair()
        server.close()
        assert client.poll(5.0)  # the tear is readable, not a hang
        with pytest.raises(EOFError):
            client.recv()
        assert client.eof
        client.close()

    def test_oversized_frame_header_tears_the_stream(self):
        listener = listen()
        raw = socket.create_connection((listener.host, listener.port))
        server = listener.accept(timeout=5.0)
        listener.close()
        try:
            raw.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(OSError, match="desynchronized"):
                server.recv()
        finally:
            raw.close()
            server.close()

    def test_satisfies_transport_protocol(self):
        from repro.cluster.transport import Transport

        client, server = tcp_pair()
        try:
            assert isinstance(client, Transport)
            a, _ = loopback_pair()
            assert isinstance(a, Transport)
        finally:
            client.close()
            server.close()


class TestParseEndpoint:
    def test_string_and_tuple(self):
        assert parse_endpoint("10.0.0.1:9999") == ("10.0.0.1", 9999)
        assert parse_endpoint(("host", 80)) == ("host", 80)

    @pytest.mark.parametrize("bad", ["nohost", ":80", "host:", "host:abc"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_endpoint(bad)


class TestHello:
    def test_handshake_carries_version_role_and_identity(self):
        a, b = loopback_pair()
        send_hello(a, "task", target_name="cw", slot=3)
        hello = expect_hello(b)
        assert hello.version == wire.PROTOCOL_VERSION
        assert hello.role == "task"
        assert hello.target_name == "cw"
        assert hello.slot == 3
        assert hello.meta["pid"] > 0

    def test_version_mismatch_is_a_structured_error(self):
        a, b = loopback_pair()
        a.send(wire.HelloMsg(999, "task", "cw", 0, {}))
        with pytest.raises(ProtocolVersionError) as exc_info:
            expect_hello(b, peer="them")
        err = exc_info.value
        assert err.ours == wire.PROTOCOL_VERSION
        assert err.theirs == 999
        assert "them" in str(err)

    def test_non_hello_first_frame_is_rejected(self):
        a, b = loopback_pair()
        a.send(wire.PingMsg(1))
        with pytest.raises(RuntimeStateError, match="instead of"):
            expect_hello(b)

    def test_silent_peer_times_out(self):
        _a, b = loopback_pair()
        with pytest.raises(RuntimeStateError, match="no hello"):
            expect_hello(b, timeout=0.05)
