"""Fixtures for the cluster suite: spawned agents + child-leak guards.

Cluster worker agents are ``subprocess.Popen`` children, invisible to the
``multiprocessing.active_children()`` guard the dist suite uses — so this
conftest wraps :func:`repro.cluster.spawn_agent_process` to track every
handle a test creates and fails the test if any agent process is still
alive at teardown (then reaps it so one leak cannot cascade).
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

import repro.cluster as cluster_pkg
import repro.cluster.agent as agent_mod
from repro.core import PjRuntime


@pytest.fixture(autouse=True)
def no_agent_process_leaks(monkeypatch):
    """Track every spawned agent; a test that leaves one running fails."""
    tracked = []
    real = agent_mod.spawn_agent_process

    def tracking_spawn(*args, **kwargs):
        handle = real(*args, **kwargs)
        tracked.append(handle)
        return handle

    monkeypatch.setattr(agent_mod, "spawn_agent_process", tracking_spawn)
    monkeypatch.setattr(cluster_pkg, "spawn_agent_process", tracking_spawn)
    yield
    leaked = [h.pid for h in tracked if h.alive()]
    for h in tracked:  # reap regardless, so one leak doesn't cascade
        h.close()
    assert not leaked, f"leaked cluster agent processes: {leaked}"
    # Cluster tests must not leak multiprocessing children either.
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    leftovers = multiprocessing.active_children()
    for proc in leftovers:
        proc.terminate()
    assert not leftovers, f"leaked worker processes: {leftovers}"


@pytest.fixture()
def agent():
    """One spawned cluster-worker agent subprocess."""
    handle = cluster_pkg.spawn_agent_process()
    yield handle
    handle.close()


@pytest.fixture()
def two_agents():
    """Two spawned agents — the canonical 2-endpoint shard set."""
    a = cluster_pkg.spawn_agent_process()
    b = cluster_pkg.spawn_agent_process()
    yield a, b
    a.close()
    b.close()


@pytest.fixture()
def cluster_rt(two_agents):
    """Runtime with a 2-endpoint cluster target named 'cw'."""
    a, b = two_agents
    runtime = PjRuntime()
    runtime.create_cluster(
        "cw", [a.endpoint, b.endpoint], heartbeat_interval=0.25
    )
    yield runtime
    runtime.shutdown(wait=False)
