"""ClusterTarget over real TCP loopback: dispatch, faults, traces, tags."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.core import PjRuntime, virtual_target_create_cluster
from repro.core.errors import (
    ProtocolVersionError,
    RegionFailedError,
    RuntimeStateError,
    TargetShutdownError,
    WorkerCrashedError,
)
from repro.core.region import TargetRegion
from repro.dist import wire

from tests.dist import bodies


def _wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestDispatch:
    def test_region_completes_over_two_real_endpoints(self, cluster_rt):
        region = cluster_rt.invoke_target_block(
            "cw", TargetRegion(bodies.square, 12), "default"
        )
        assert region.result() == 144

    def test_work_spreads_across_both_agents(self, cluster_rt, two_agents):
        a, b = two_agents
        regions = [
            cluster_rt.invoke_target_block(
                "cw", TargetRegion(bodies.worker_pid), "nowait"
            )
            for _ in range(8)
        ]
        pids = {r.result(timeout=30.0) for r in regions}
        assert pids <= {a.pid, b.pid}
        target = cluster_rt.get_target("cw")
        assert set(target.worker_pids) - {None} <= {a.pid, b.pid}

    def test_failing_body_raises_structured_remote_error(self, cluster_rt):
        with pytest.raises(RegionFailedError) as exc_info:
            cluster_rt.invoke_target_block(
                "cw", TargetRegion(bodies.boom, "kapow")
            )
        assert isinstance(exc_info.value.__cause__, ValueError)

    def test_describe_names_the_shard_set(self, cluster_rt):
        text = cluster_rt.get_target("cw").describe()
        assert "kind=cluster" in text
        assert "endpoints=" in text and "shards=1" in text

    def test_pump_and_drain_are_refused(self, cluster_rt):
        target = cluster_rt.get_target("cw")
        with pytest.raises(RuntimeStateError):
            target.process_one()
        with pytest.raises(RuntimeStateError):
            target.drain()


class TestFaults:
    def test_agent_killed_mid_region_raises_worker_crashed(self, two_agents):
        a, b = two_agents
        rt = PjRuntime()
        try:
            # One endpoint, no reconnects: the kill verdict must be crisp.
            rt.create_cluster("frail", [a.endpoint], max_restarts=0)
            region = TargetRegion(bodies.sleepy, 30.0, name="doomed")
            rt.invoke_target_block("frail", region, "nowait")
            _wait_until(lambda: rt.get_target("frail")._slots[0].busy)
            start = time.monotonic()
            a.terminate()
            with pytest.raises(RegionFailedError) as exc_info:
                region.result(timeout=30.0)
            elapsed = time.monotonic() - start
            cause = exc_info.value.__cause__
            assert isinstance(cause, WorkerCrashedError)
            assert cause.target_name == "frail"
            assert elapsed < 15.0, f"crash detection took {elapsed:.1f}s"
        finally:
            rt.shutdown(wait=False)

    def test_shard_failover_to_surviving_endpoint(self, cluster_rt, two_agents):
        a, b = two_agents
        target = cluster_rt.get_target("cw")
        # Warm both lanes up so each agent holds one.
        warm = [
            cluster_rt.invoke_target_block(
                "cw", TargetRegion(bodies.sleepy, 0.2), "nowait"
            )
            for _ in range(2)
        ]
        _wait_until(lambda: target.connected_count == 2)
        a.terminate()
        for r in warm:
            r.wait(30.0)  # terminal — completed or crashed, never hung
        # Post-kill work must still complete on the surviving agent.
        after = [
            cluster_rt.invoke_target_block(
                "cw", TargetRegion(bodies.worker_pid), "nowait"
            )
            for _ in range(4)
        ]
        pids = set()
        for r in after:
            assert r.wait(30.0), "post-kill region hung"
            if r.exception is None:
                pids.add(r.result())
        assert pids == {b.pid}, "failover did not route to the survivor"
        assert target.stats["worker_crashes"] >= 1

    def test_all_endpoints_dead_fails_backlog_and_declares_death(self, agent):
        rt = PjRuntime()
        try:
            rt.create_cluster("doom", [agent.endpoint], max_restarts=0)
            # Establish the lane, then kill the only agent.
            rt.invoke_target_block("doom", TargetRegion(bodies.square, 2))
            agent.terminate()
            agent.wait()
            target = rt.get_target("doom")
            region = TargetRegion(bodies.square, 3, name="orphan")
            try:
                rt.invoke_target_block("doom", region, "nowait")
            except (RegionFailedError, TargetShutdownError):
                return  # refused outright: also errors-not-hangs
            assert region.wait(30.0), "backlog region hung on a dead cluster"
            assert region.exception is not None
            assert _wait_until(lambda: not target.alive)
        finally:
            rt.shutdown(wait=False)

    def test_cooperative_cancel_crosses_the_wire(self, cluster_rt):
        region = TargetRegion(bodies.cooperative_loop, 30.0, name="coop")
        cluster_rt.invoke_target_block("cw", region, "nowait")
        slot_busy = lambda: any(
            s.busy for s in cluster_rt.get_target("cw")._slots
        )
        assert _wait_until(slot_busy), "region never started remotely"
        region.request_cancel()
        assert region.wait(15.0), "cancelled region hung"
        # The remote body polls its token and returns early — the cancel
        # message reached the agent's ctrl loop and flipped the right token.
        assert region.result() == "cancelled" or region.exception is not None


class TestTraceMerge:
    def test_remote_events_merge_with_connect_instants(self, cluster_rt):
        session = obs.enable()
        try:
            cluster_rt.invoke_target_block(
                "cw", TargetRegion(bodies.sleepy, 0.01)
            )
            events = list(session.events())
        finally:
            obs.disable()
        kinds = {e.kind.name for e in events}
        assert "WORKER_CONNECT" in kinds
        execs = [e for e in events if "[w" in (e.target or "")
                 and e.kind.name in ("EXEC_BEGIN", "EXEC_END")]
        assert len(execs) == 2, f"remote exec events missing: {kinds}"
        assert "pid" in execs[0].thread  # "<endpoint> pid <N>" track label
        # Clock handshake applied: remote timestamps sort after dispatch.
        dequeues = [e for e in events if e.kind.name == "DEQUEUE"]
        assert min(e.ts for e in execs) >= max(e.ts for e in dequeues)

    def test_chrome_export_has_worker_connect_instant(self, cluster_rt):
        session = obs.enable()
        try:
            cluster_rt.invoke_target_block(
                "cw", TargetRegion(bodies.sleepy, 0.01)
            )
            doc = obs.to_chrome_trace(session.events())
        finally:
            obs.disable()
        instants = [ev for ev in doc["traceEvents"]
                    if ev.get("ph") == "i" and "worker-connect" in ev.get("name", "")]
        assert instants, "worker-connect instant missing from Chrome export"


class TestTags:
    def test_wait_tag_joins_cross_host_group(self, cluster_rt):
        for i in range(4):
            cluster_rt.invoke_target_block(
                "cw", TargetRegion(bodies.sleepy, 0.05, value=i), "name_as",
                tag="batch",
            )
        cluster_rt.wait_tag("batch", timeout=30.0)
        target = cluster_rt.get_target("cw")
        assert _wait_until(
            lambda: target.stats["tag_notifications"] >= 4
        ), target.stats
        assert target.tag_progress().get("batch", 0) >= 4

    def test_on_tag_done_hook_sees_progress(self, cluster_rt):
        seen = []
        target = cluster_rt.get_target("cw")
        target.on_tag_done = lambda tag, seq, outcome: seen.append(
            (tag, outcome)
        )
        cluster_rt.invoke_target_block(
            "cw", TargetRegion(bodies.square, 5), "name_as", tag="one"
        )
        cluster_rt.wait_tag("one", timeout=30.0)
        assert _wait_until(lambda: ("one", "completed") in seen), seen


class TestVersionGate:
    def test_mismatched_client_is_refused_structurally(self, agent, monkeypatch):
        # A client from a "different checkout": its hello announces a
        # protocol the agent does not speak.  Every connect attempt dies in
        # the handshake with ProtocolVersionError, the lane burns its budget
        # and the region fails — no hang, no misparse.
        monkeypatch.setattr(wire, "PROTOCOL_VERSION", 999)
        rt = PjRuntime()
        try:
            rt.create_cluster("stale", [agent.endpoint], max_restarts=0)
            region = TargetRegion(bodies.square, 2, name="refused")
            try:
                rt.invoke_target_block("stale", region, "nowait")
            except (RegionFailedError, TargetShutdownError):
                return
            assert region.wait(30.0), "mismatched-version dispatch hung"
            assert region.exception is not None
        finally:
            rt.shutdown(wait=False)

    def test_expect_hello_raises_against_mismatched_agent(self, agent, monkeypatch):
        from repro.cluster.transport import connect, expect_hello, parse_endpoint, send_hello

        monkeypatch.setattr(wire, "PROTOCOL_VERSION", 999)
        tr = connect(*parse_endpoint(agent.endpoint))
        try:
            send_hello(tr, "task", target_name="stale", slot=0)
            with pytest.raises(ProtocolVersionError) as exc_info:
                expect_hello(tr, peer=agent.endpoint)
            assert exc_info.value.ours == 999
            assert exc_info.value.theirs != 999  # the agent's real version
        finally:
            tr.close()


class TestLifecycle:
    def test_shutdown_leaves_the_agent_running_for_others(self, agent):
        rt = PjRuntime()
        try:
            virtual_target_create_cluster("first", [agent.endpoint], runtime=rt)
            assert rt.invoke_target_block(
                "first", TargetRegion(bodies.square, 3)
            ).result() == 9
            rt.get_target("first").shutdown(wait=True)
            assert agent.alive(), "shutdown must not kill shared agents"
            # The same agent serves a brand-new target afterwards.
            virtual_target_create_cluster("second", [agent.endpoint], runtime=rt)
            assert rt.invoke_target_block(
                "second", TargetRegion(bodies.add, 2, 3)
            ).result() == 5
        finally:
            rt.shutdown(wait=False)

    def test_hard_shutdown_fails_inflight_fast(self, cluster_rt):
        region = TargetRegion(bodies.stubborn_sleep, 30.0, name="stuck")
        cluster_rt.invoke_target_block("cw", region, "nowait")
        target = cluster_rt.get_target("cw")
        assert _wait_until(lambda: any(s.busy for s in target._slots))
        start = time.monotonic()
        target.shutdown(wait=False)
        assert region.wait(15.0), "in-flight region hung through hard stop"
        assert time.monotonic() - start < 15.0
        assert region.exception is not None

    def test_bad_configuration_is_rejected(self):
        rt = PjRuntime()
        try:
            with pytest.raises(ValueError):
                rt.create_cluster("empty", [])
            with pytest.raises(ValueError):
                rt.create_cluster("neg", ["h:1"], shards=0)
        finally:
            rt.shutdown(wait=False)
