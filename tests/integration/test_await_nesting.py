"""A reproduction finding: Algorithm 1's logical barrier nests under load.

Algorithm 1 implements ``await`` by having the encountering thread *pump its
own queue* ("T.processAnotherEventHandler()").  When the next event's
handler also awaits, the pump call does not return until that inner handler
finishes — so under sustained load the EDT builds a stack of nested pumping
loops and earlier events' continuations resume LIFO, after everything
nested above them.  The offloaded *work* still completes promptly (the
responsiveness story survives); what suffers is the continuation latency of
early events.

This is inherent to the paper's pumping design (the same hazard as nested
modal message loops in desktop GUIs); the compiled Figure 6 example avoids
it by using ``nowait`` + an EDT-hop for the completion.  These tests pin
the behaviour down so the divergence from the simulator's continuation-
based model (see DESIGN.md) is measured, not folklore.
"""

import threading
import time

import pytest

from repro.core import PjRuntime, SchedulingMode, TargetRegion


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    runtime.start_edt("edt")
    runtime.create_worker("worker", 4)
    yield runtime
    runtime.shutdown(wait=False)


class TestAwaitNesting:
    def test_continuations_unwind_lifo(self, rt):
        """Three awaiting handlers posted back-to-back: work completes in
        FIFO order, continuations in LIFO order."""
        edt = rt.get_target("edt")
        work_done, continued = [], []
        all_done = threading.Event()

        def make_handler(i):
            # Distinct durations make the finish order deterministic: all
            # three blocks start ~simultaneously (during each other's
            # barriers) and finish shortest-first.
            def handler():
                rt.invoke_target_block(
                    "worker",
                    lambda: (time.sleep(0.04 + 0.04 * i), work_done.append(i)),
                    SchedulingMode.AWAIT,
                )
                continued.append(i)
                if len(continued) == 3:
                    all_done.set()

            return handler

        for i in range(3):
            edt.post(TargetRegion(make_handler(i)))
        assert all_done.wait(timeout=10)
        assert work_done == [0, 1, 2]      # work overlapped, shortest first
        assert continued == [2, 1, 0]      # LIFO: the nested-pump unwind

    def test_offloaded_work_still_prompt(self, rt):
        """The hazard hits continuations, not the work: even with nesting,
        every offloaded block starts within a dispatch hop of its event."""
        edt = rt.get_target("edt")
        starts = {}
        t0 = time.perf_counter()
        all_started = threading.Event()

        def make_handler(i):
            def handler():
                def work():
                    starts[i] = time.perf_counter() - t0
                    if len(starts) == 4:
                        all_started.set()
                    time.sleep(0.08)

                rt.invoke_target_block("worker", work, SchedulingMode.AWAIT)

            return handler

        for i in range(4):
            edt.post(TargetRegion(make_handler(i)))
        assert all_started.wait(timeout=10)
        # All four blocks started well before one block's 80 ms finished:
        # they were dispatched during each other's logical barriers.
        assert max(starts.values()) < 0.08

    def test_nowait_pattern_avoids_the_nesting(self, rt):
        """Figure 6's nowait + EDT-hop completion keeps continuations FIFO."""
        edt = rt.get_target("edt")
        continued = []
        all_done = threading.Event()

        def make_handler(i):
            def handler():
                def work():
                    time.sleep(0.04 + 0.04 * i)

                    def completion():
                        continued.append(i)
                        if len(continued) == 3:
                            all_done.set()

                    rt.invoke_target_block("edt", completion, SchedulingMode.NOWAIT)

                rt.invoke_target_block("worker", work, SchedulingMode.NOWAIT)

            return handler

        for i in range(3):
            edt.post(TargetRegion(make_handler(i)))
        assert all_done.wait(timeout=10)
        assert continued == [0, 1, 2]
