"""Integration: coexistence of the event-driven and fork-join models.

The paper's thesis is that the two models combine: `target virtual` for
asynchronous offloading, classic `parallel`/`for` for acceleration inside
the offloaded block (asynchronous parallel), with kernels as the payload.
"""

import threading
import time

import numpy as np
import pytest

from repro.compiler import exec_omp
from repro.core import PjRuntime, SchedulingMode
from repro.kernels import crypt, get_kernel
import repro.openmp as omp


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    runtime.start_edt("edt")
    runtime.create_worker("worker", 4)
    yield runtime
    runtime.shutdown(wait=False)


class TestAsyncParallel:
    def test_offloaded_parallel_kernel_api(self, rt):
        """Asynchronous-parallel with the library API: worker target block
        forks a team that splits the Crypt kernel."""
        key = crypt.generate_key()
        ek = crypt.encryption_subkeys(key)
        data = np.arange(8 * 64, dtype=np.uint8) % 251
        expected = crypt.encrypt(data, ek)
        out = np.zeros_like(data)
        edt_blocked = []

        def handler():
            def offloaded():
                def team_body():
                    tid = omp.omp_get_thread_num()
                    n = omp.omp_get_num_threads()
                    s = crypt.block_slices(data.size, n)[tid]
                    out[s] = crypt.encrypt(data[s], ek)

                omp.parallel(team_body, num_threads=4)

            rt.invoke_target_block("worker", offloaded, SchedulingMode.AWAIT)
            edt_blocked.append(False)

        rt.invoke_target_block("edt", handler)
        assert np.array_equal(out, expected)
        assert edt_blocked == [False]

    def test_offloaded_parallel_kernel_pragmas(self, rt):
        """The same pattern via compiled pragmas."""
        src = '''
def run(spec, size):
    results = {}
    #omp target virtual(worker)
    if True:
        partials = [None] * 4
        # tid must be private: it is per-thread state, exactly as in OpenMP.
        #omp parallel num_threads(4) private(tid)
        if True:
            import repro.openmp as _omp
            tid = _omp.omp_get_thread_num()
            partials[tid] = spec.run_chunk(size, tid, 4)
        results["partials"] = partials
    return results
'''
        ns = exec_omp(src, runtime=rt)
        spec = get_kernel("series")
        size = spec.sizes["A"]
        result = ns["run"](spec, size)
        stitched = np.concatenate(result["partials"])
        assert np.allclose(stitched, spec.run_sequential(size))

    def test_parallel_region_inside_worker_has_fresh_team(self, rt):
        """omp thread numbering is per-team even on pool threads."""
        seen = {}

        def offloaded():
            def body():
                seen.setdefault(threading.current_thread().name, set()).add(
                    omp.omp_get_thread_num()
                )

            omp.parallel(body, num_threads=3)

        rt.invoke_target_block("worker", offloaded)
        all_tids = set().union(*seen.values())
        assert all_tids == {0, 1, 2}


class TestEventStormWithTags:
    def test_many_tagged_events_join_correctly(self, rt):
        """A burst of events each spawning tagged work; wait(tag) sees all."""
        counter = {"n": 0}
        lock = threading.Lock()

        def fire_event(i):
            def tagged_work():
                time.sleep(0.001)
                with lock:
                    counter["n"] += 1

            rt.invoke_target_block("worker", tagged_work, "name_as", tag="storm")

        for i in range(25):
            rt.invoke_target_block("edt", lambda i=i: fire_event(i), "nowait")
        deadline = time.monotonic() + 5
        while rt.tags.outstanding("storm") < 1 and counter["n"] < 25:
            if time.monotonic() > deadline:
                break
            time.sleep(0.005)
        rt.wait_tag("storm", timeout=10)
        # All events fired their work and every tagged block finished.
        deadline = time.monotonic() + 5
        while counter["n"] < 25 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert counter["n"] == 25


class TestKernelsOnVirtualTargets:
    @pytest.mark.parametrize("name", ["crypt", "series", "montecarlo", "raytracer"])
    def test_kernel_offload_matches_sequential(self, rt, name):
        """Every paper kernel computes identically on a worker target."""
        spec = get_kernel(name)
        size = spec.sizes["A"]
        seq = spec.run_sequential(size)
        handle = rt.invoke_target_block(
            "worker", lambda: spec.run_sequential(size), "nowait"
        )
        offloaded = handle.result(timeout=60)
        if isinstance(seq, np.ndarray):
            assert np.allclose(seq, offloaded)
        else:
            assert seq == offloaded

    def test_chunked_kernel_over_tag_group(self, rt):
        """Chunk fan-out with name_as/wait — the event-driven spelling of a
        worksharing loop."""
        spec = get_kernel("crypt")
        size = spec.sizes["A"]
        chunks = [None] * 4

        for i in range(4):
            rt.invoke_target_block(
                "worker",
                lambda i=i: chunks.__setitem__(i, spec.run_chunk(size, i, 4)),
                "name_as",
                tag="chunks",
            )
        rt.wait_tag("chunks", timeout=60)
        stitched = np.concatenate(chunks)
        assert np.array_equal(stitched, spec.run_sequential(size))
