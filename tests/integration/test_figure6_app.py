"""Integration: the paper's Figure 6 application, end to end on real threads.

Compiled pragma code + the Swing-like event loop + EDT-confined widgets +
worker virtual targets, all cooperating the way the paper's semantic example
describes.
"""

import threading
import time

import pytest

from repro.compiler import exec_omp
from repro.core import PjRuntime
from repro.eventloop import Button, EventLoop, Panel


@pytest.fixture()
def app():
    rt = PjRuntime()
    loop = EventLoop(rt, "edt")
    rt.create_worker("worker", 3)
    yield rt, loop
    rt.shutdown(wait=False)


FIGURE6_SOURCE = '''
def make_handler(panel, get_hash_code, network_download, format_convert):
    def button_on_click(event):
        panel.show_msg("Started EDT handling")
        info = panel.collect_input()
        #omp target virtual(worker) nowait
        if True:
            hscode = get_hash_code(info)
            buf = network_download(hscode)
            img = format_convert(buf)
            #omp target virtual(edt) nowait
            if True:
                panel.display_img(img)
                panel.show_msg("Finished!")
                event.record.mark_finished()
    return button_on_click
'''


class TestFigure6:
    def test_full_flow(self, app):
        rt, loop = app
        panel = Panel(loop)
        button = Button(loop)
        threads = {}

        def get_hash_code(info):
            threads["hash"] = threading.current_thread()
            return hash(str(info)) & 0xFFFF

        def network_download(hs):
            time.sleep(0.02)  # simulated I/O
            return bytes(str(hs), "ascii")

        def format_convert(buf):
            threads["convert"] = threading.current_thread()
            return f"image<{buf.decode()}>"

        ns = exec_omp(FIGURE6_SOURCE, runtime=rt)
        handler = ns["make_handler"](
            panel, get_hash_code, network_download, format_convert
        )
        loop.invoke_and_wait(lambda: panel.set_input({"query": "cat"}))
        button.on_click(EventLoop.defer_completion(handler))
        rec = button.click()

        assert loop.wait_all_finished(timeout=10)
        # Messages in program order; widget ops all on the EDT (no
        # EDTViolationError raised), compute on the worker.
        assert panel.messages == ["Started EDT handling", "Finished!"]
        assert len(panel.images) == 1
        assert threads["hash"].name.startswith("pyjama-worker-")
        assert threads["convert"].name.startswith("pyjama-worker-")
        assert rec.response_time > 0.02  # includes the download

    def test_edt_responsive_while_downloading(self, app):
        """Fire a second, cheap event while the first is mid-download: it
        must complete long before the first one finishes."""
        rt, loop = app
        panel = Panel(loop)
        slow_button = Button(loop, "slow")
        quick_button = Button(loop, "quick")

        release = threading.Event()

        ns = exec_omp(FIGURE6_SOURCE, runtime=rt)
        handler = ns["make_handler"](
            panel,
            lambda info: 1,
            lambda hs: (release.wait(5), b"data")[1],
            lambda buf: "img",
        )
        slow_button.on_click(EventLoop.defer_completion(handler))
        quick_times = []
        quick_button.on_click(lambda ev: quick_times.append(time.perf_counter()))

        loop.invoke_and_wait(lambda: panel.set_input("x"))
        slow_rec = slow_button.click()
        time.sleep(0.05)
        t_fire = time.perf_counter()
        quick_button.click()

        deadline = time.monotonic() + 5
        while not quick_times and time.monotonic() < deadline:
            time.sleep(0.005)
        assert quick_times, "quick event never handled"
        assert quick_times[0] - t_fire < 0.5
        assert slow_rec.finished_at is None  # still blocked on the download
        release.set()
        assert loop.wait_all_finished(timeout=5)
