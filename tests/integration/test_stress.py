"""Stress/soak tests: the full real-thread stack under sustained load.

A production-credibility check: hundreds of events through the event loop,
virtual targets, compiled handlers and kernels, asserting zero lost events,
zero EDT-confinement violations, and correct results throughout.
"""

import threading
import time

import numpy as np
import pytest

from repro.compiler import exec_omp
from repro.core import PjRuntime
from repro.eventloop import Button, EventLoop, Panel
from repro.kernels import crypt


@pytest.fixture()
def app():
    rt = PjRuntime()
    loop = EventLoop(rt, "edt")
    rt.create_worker("worker", 4)
    yield rt, loop
    rt.shutdown(wait=False)


class TestEventStorm:
    def test_200_compiled_events_none_lost(self, app):
        rt, loop = app
        panel = Panel(loop)
        button = Button(loop)
        key = crypt.generate_key()
        ek = crypt.encryption_subkeys(key)
        dk = crypt.decryption_subkeys(ek)
        failures = []
        lock = threading.Lock()

        ns = exec_omp(
            '''
def make_handler(encrypt, decrypt, record_failure, panel):
    def handler(event):
        payload = event.payload
        #omp target virtual(worker) nowait
        if True:
            ct = encrypt(payload)
            pt = decrypt(ct)
            ok = (pt == payload).all()
            #omp target virtual(edt) nowait
            if True:
                if not ok:
                    record_failure(event.event_id)
                panel.show_msg("done")
                event.record.mark_finished()
    return handler
''',
            runtime=rt,
        )
        handler = ns["make_handler"](
            lambda d: crypt.encrypt(d, ek),
            lambda d: crypt.decrypt(d, dk),
            lambda eid: failures.append(eid),
            panel,
        )
        button.on_click(EventLoop.defer_completion(handler))

        rng = np.random.default_rng(0)
        n_events = 200
        for i in range(n_events):
            button.click(payload=rng.integers(0, 256, size=8 * 32, dtype=np.uint8))

        assert loop.wait_all_finished(timeout=120)
        assert failures == []
        assert len(panel.messages) == n_events
        records = loop.records
        assert len(records) == n_events
        assert all(r.response_time is not None for r in records)

    def test_mixed_modes_under_load(self, app):
        """Interleave all four scheduling modes from many EDT handlers."""
        rt, loop = app
        counters = {"default": 0, "nowait": 0, "tagged": 0, "await": 0}
        lock = threading.Lock()

        def bump(key):
            with lock:
                counters[key] += 1

        def handler(ev):
            i = ev.payload
            mode = ("default", "nowait", "name_as", "await")[i % 4]
            if mode == "default":
                rt.invoke_target_block("worker", lambda: bump("default"))
            elif mode == "nowait":
                rt.invoke_target_block("worker", lambda: bump("nowait"), "nowait")
            elif mode == "name_as":
                rt.invoke_target_block(
                    "worker", lambda: bump("tagged"), "name_as", tag="storm"
                )
            else:
                rt.invoke_target_block("worker", lambda: bump("await"), "await")

        loop.on("go", handler)
        n = 120
        for i in range(n):
            loop.fire("go", payload=i)
        assert loop.wait_all_finished(timeout=60)
        rt.wait_tag("storm", timeout=30)
        deadline = time.monotonic() + 30
        while sum(counters.values()) < n and time.monotonic() < deadline:
            time.sleep(0.01)
        assert sum(counters.values()) == n
        assert counters == {"default": 30, "nowait": 30, "tagged": 30, "await": 30}

    def test_runtime_counters_consistent_after_storm(self, app):
        rt, loop = app
        rt.reset_counters()
        n = 60
        done = threading.Event()
        remaining = [n]
        lock = threading.Lock()

        def work():
            with lock:
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.set()

        for _ in range(n):
            rt.invoke_target_block("worker", work, "nowait")
        assert done.wait(timeout=30)
        assert rt.counters["posted"] == n
        assert rt.counters["nowait"] == n
