"""Cross-validation: the simulator's predictions vs real threads.

The simulator substitutes for wall-clock measurement because the GIL blocks
CPU-parallelism — but ``time.sleep`` releases the GIL, so for *sleep-based*
handlers real Python threads genuinely overlap and the real-thread runtime
can be measured meaningfully.  These tests drive the same scenario through
both engines and check the simulator's qualitative predictions hold on real
threads, and that its quantitative predictions land within a loose factor
(real machines add scheduling noise the DES does not model).
"""

import time

import pytest

from repro.core import PjRuntime, SchedulingMode
from repro.eventloop import EventLoop
from repro.sim import GuiBenchConfig, KernelCostModel, run_gui_benchmark

HANDLER_S = 0.030  # 30 ms sleep "kernel": releases the GIL like real I/O/JNI


def run_real(approach: str, rate: float, n_events: int) -> float:
    """Mean response time of the real-thread EventLoop under an open loop."""
    rt = PjRuntime()
    loop = EventLoop(rt, "edt")
    rt.create_worker("worker", 4)
    try:
        @EventLoop.defer_completion
        def pyjama_handler(ev):
            # Figure 6's structure: nowait offload, completion hopping back
            # to the EDT via a nested target block.  (A per-event `await`
            # would nest pumping loops under sustained load — see
            # test_await_nesting.py for that measured hazard.)
            rec = ev.record

            def offloaded():
                time.sleep(HANDLER_S)
                rt.invoke_target_block("edt", rec.mark_finished, SchedulingMode.NOWAIT)

            rt.invoke_target_block("worker", offloaded, SchedulingMode.NOWAIT)

        def sequential_handler(ev):
            time.sleep(HANDLER_S)

        loop.on(
            "req",
            pyjama_handler if approach == "pyjama_async" else sequential_handler,
        )
        gap = 1.0 / rate
        for _ in range(n_events):
            loop.fire("req")
            time.sleep(gap)
        assert loop.wait_all_finished(timeout=60)
        records = loop.records
        return sum(r.response_time for r in records) / len(records)
    finally:
        rt.shutdown(wait=False)


def run_sim(approach: str, rate: float, n_events: int) -> float:
    kernel = KernelCostModel("sleep", serial_time=HANDLER_S, parallel_fraction=0.9)
    result = run_gui_benchmark(
        GuiBenchConfig(approach=approach, kernel=kernel, rate=rate, n_events=n_events)
    )
    return result.response.mean


class TestCrossValidation:
    def test_sequential_queueing_matches(self):
        """At 2x the saturation rate, both engines show the queue blowing up
        by a comparable factor."""
        rate = 2.0 / HANDLER_S  # ~66/s against a 33/s sequential capacity
        n = 40
        real = run_real("sequential", rate, n)
        sim = run_sim("sequential", rate, n)
        # Both far above a single handler time...
        assert real > 3 * HANDLER_S
        assert sim > 3 * HANDLER_S
        # ...and within a factor ~2 of each other (real sleep() overshoots).
        assert 0.4 < real / sim < 2.5

    def test_pyjama_flatness_matches(self):
        rate = 2.0 / HANDLER_S
        n = 40
        real = run_real("pyjama_async", rate, n)
        sim = run_sim("pyjama_async", rate, n)
        # Both stay near one handler latency (no queueing blow-up).
        assert real < 3 * HANDLER_S
        assert sim < 2 * HANDLER_S

    def test_ordering_prediction_holds_on_real_threads(self):
        """The simulator's core claim — offloading beats sequential past
        saturation — verified on actual threads."""
        rate = 2.0 / HANDLER_S
        n = 40
        real_seq = run_real("sequential", rate, n)
        real_pyj = run_real("pyjama_async", rate, n)
        sim_seq = run_sim("sequential", rate, n)
        sim_pyj = run_sim("pyjama_async", rate, n)
        assert real_pyj < real_seq / 2
        assert sim_pyj < sim_seq / 2
