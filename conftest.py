"""Root test configuration: a hang watchdog for every test.

The suite exercises shutdown/deadlock semantics on real threads, so a
regression tends to manifest as a *hang*, not a failure.  ``pytest-timeout``
(declared in the ``test`` extra) enforces the 60 s per-test budget when
installed.  When it is missing we fall back to a minimal watchdog built on
:func:`faulthandler.dump_traceback_later`: a hung test dumps every thread's
traceback to stderr and aborts the run instead of wedging CI forever.
"""

from __future__ import annotations

import faulthandler

import pytest

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

_FALLBACK_TIMEOUT = 60.0


def pytest_addoption(parser):
    if not _HAVE_PYTEST_TIMEOUT:
        # Own the ini key pytest-timeout would normally declare, so
        # ``timeout = 60`` in pyproject stays meaningful without the plugin.
        parser.addini(
            "timeout",
            "per-test timeout in seconds (fallback watchdog)",
            default=str(_FALLBACK_TIMEOUT),
        )


if not _HAVE_PYTEST_TIMEOUT:

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_protocol(item, nextitem):
        try:
            budget = float(item.config.getini("timeout") or _FALLBACK_TIMEOUT)
        except (TypeError, ValueError):
            budget = _FALLBACK_TIMEOUT
        if budget > 0:
            faulthandler.dump_traceback_later(budget, exit=True)
        try:
            yield
        finally:
            faulthandler.cancel_dump_traceback_later()
